package s1

// Tiered execution (DESIGN.md §12). The machine counts every function
// invocation with cheap always-on per-function counters (the profiler's
// shadow-stack attribution idea, without the collapsed-stack machinery);
// when a function crosses the hot threshold it is re-optimized in place:
//
//   - trace re-fusion: the function's region of the fused overlay is
//     rebuilt with unbounded basic-block superinstructions. Block
//     boundaries are the jump targets discovered from the actual code
//     (branch/CATCH targets, the return points after CALL/CALLF and
//     SQApplyList) plus any landing PCs observed at run time, instead of
//     the static fuser's 4-instruction cap.
//   - block lowering: the whole function is lowered into one compact
//     ops array run by a switch-loop trace executor (runBlock), with the
//     step/cycle/MOV meters accumulated in Go locals and spilled to
//     Machine state only at trace exits, calls, faults, and allocation
//     safepoints. A taken jump whose target lies inside the function
//     continues in the executor (so loops never return to Run's dispatch
//     loop while hot), bounded by blockChunk and a StepLimit guard at
//     every such continuation; a not-taken conditional branch falls
//     through without spilling at all. GC, Interrupt, -max-steps and
//     -profile all see a consistent machine: register state is never
//     cached across instructions (the collector roots m.regs), m.pc is
//     materialized before any fallible or allocating operation, and the
//     profiler is fed per original instruction exactly as tick would.
//   - inline caching: hot CALL/CALLF/TCALL/TCALLF sites bind their
//     resolved callee (validated against the symbol's function cell, so
//     SetSymbolFunction rebinds invalidate naturally), and hot numeric
//     CALLSQ sites bind their routine's fastNum fast path directly into
//     the lowered block.
//
// Correctness invariants (shared with fuse.go, extended):
//   - Each straight-line trace segment retires at most len(fn)
//     architectural instructions before the next jump check. Run's d.n
//     overshoot guard establishes Stats.Instrs+len(fn) <= StepLimit at
//     entry, and every internal-jump continuation re-checks it, so
//     -max-steps trips at the exact original-instruction count.
//   - Only block-head decFused entries change, in place. Control
//     transfers landing mid-block dispatch that PC's base entry (identity
//     back-mapping); ret/throw report such landings to noteLanding, which
//     re-fuses the function with the landing as a boundary.
//   - Re-optimizing a function that is live on the call stack (or
//     currently executing) is safe: executing closures are value copies
//     of decFused entries, and installs happen only at instruction
//     boundaries (calls), so the running block finishes on the old code.
//   - Promotion never touches Stats: tier counters live on the engine,
//     so differential oracles comparing Stats across -notier hold.

// DefaultHotThreshold is the invocation count at which a function is
// re-optimized. Small enough that benchmark drivers heat up quickly,
// large enough that one-shot top-level forms never pay for promotion.
const DefaultHotThreshold = 64

// tierFn is one function's always-on execution counters.
type tierFn struct {
	calls  int64
	cycles int64 // inclusive cycles attributed at frame exit
	hot    bool
}

// tierFrame mirrors one machine call frame for cycle attribution.
type tierFrame struct {
	fn  int32
	cyc int64 // Stats.Cycles at frame entry
}

// callCache is one call site's inline cache: the resolved callee,
// validated against the word it was resolved from (the symbol's function
// cell, or the callee register's value), so rebinds invalidate it.
type callCache struct {
	valid bool
	cell  Word // the observed function-cell / register word
	fn    int32
	entry int32
}

// tierEngine is the machine's tiered-execution state.
type tierEngine struct {
	threshold int64 // <= 0: promote at install time ("forced hot")
	fns       []tierFn
	stack     []tierFrame
	// landings are PCs where a control transfer was observed to land in
	// the middle of a lowered block; re-fusion splits there.
	landings map[int]bool

	promotions    int64
	refusions     int64
	loweredBlocks int64
	loweredInstrs int64
	cacheFills    int64
}

// TierStats is a snapshot of the tier engine's counters.
type TierStats struct {
	Enabled       bool
	Threshold     int64
	HotFunctions  int64
	Promotions    int64
	Refusions     int64
	LoweredBlocks int64
	LoweredInstrs int64
	CacheFills    int64
}

// TierFnStat is one function's hot-path counters (debug endpoints).
type TierFnStat struct {
	Name   string
	Calls  int64
	Cycles int64
	Hot    bool
}

// TierStats snapshots the tier engine's counters; zero when -notier.
func (m *Machine) TierStats() TierStats {
	t := m.tier
	if t == nil {
		return TierStats{}
	}
	s := TierStats{
		Enabled:       true,
		Threshold:     t.threshold,
		Promotions:    t.promotions,
		Refusions:     t.refusions,
		LoweredBlocks: t.loweredBlocks,
		LoweredInstrs: t.loweredInstrs,
		CacheFills:    t.cacheFills,
	}
	for i := range t.fns {
		if t.fns[i].hot {
			s.HotFunctions++
		}
	}
	return s
}

// TierFunctions returns per-function invocation/cycle counters sorted by
// function index; nil when -notier.
func (m *Machine) TierFunctions() []TierFnStat {
	t := m.tier
	if t == nil {
		return nil
	}
	out := make([]TierFnStat, 0, len(t.fns))
	for i := range t.fns {
		f := &t.fns[i]
		if f.calls == 0 {
			continue
		}
		out = append(out, TierFnStat{
			Name: m.Funcs[i].Name, Calls: f.calls, Cycles: f.cycles, Hot: f.hot,
		})
	}
	return out
}

// SetNoTier disables tiered execution and rolls every promoted function
// back to the static fused overlay.
func (m *Machine) SetNoTier() {
	if m.tier == nil {
		return
	}
	m.tier = nil
	m.tierHeads = nil
	if !m.noFuse && len(m.decBase) > 0 {
		m.decFused = append([]dinstr(nil), m.decBase...)
		m.fuseGroups = nil
		m.fuseRange(0, len(m.decBase))
	}
}

// SetHotThreshold sets the invocation count at which a function is
// re-optimized; n <= 0 promotes every function as soon as it is
// installed ("forced hot", -hot-threshold=0). Re-enables tiering if it
// was off.
func (m *Machine) SetHotThreshold(n int64) {
	if m.tier == nil {
		m.tier = &tierEngine{}
	}
	m.tier.threshold = n
	if n <= 0 {
		m.tier.ensure(len(m.Funcs))
		for i := range m.Funcs {
			m.tier.promote(m, i)
		}
	}
}

func (t *tierEngine) ensure(n int) {
	for len(t.fns) < n {
		t.fns = append(t.fns, tierFn{})
	}
}

// tdepth is the tier shadow-stack depth, nil-safe (catchFrame capture).
func (t *tierEngine) tdepth() int {
	if t == nil {
		return 0
	}
	return len(t.stack)
}

// onCall mirrors enterFrame on the tier shadow stack and triggers
// promotion when the callee crosses the threshold.
func (t *tierEngine) onCall(m *Machine, idx int) {
	t.ensure(len(m.Funcs))
	f := &t.fns[idx]
	f.calls++
	t.stack = append(t.stack, tierFrame{fn: int32(idx), cyc: m.Stats.Cycles})
	if !f.hot && f.calls >= t.threshold {
		t.promote(m, idx)
	}
}

// onTail mirrors tailCall: the departing function is charged and its
// frame slot is reused by the callee.
func (t *tierEngine) onTail(m *Machine, idx int) {
	t.ensure(len(m.Funcs))
	f := &t.fns[idx]
	f.calls++
	if n := len(t.stack); n > 0 {
		fr := &t.stack[n-1]
		t.fns[fr.fn].cycles += m.Stats.Cycles - fr.cyc
		fr.fn, fr.cyc = int32(idx), m.Stats.Cycles
	} else {
		t.stack = append(t.stack, tierFrame{fn: int32(idx), cyc: m.Stats.Cycles})
	}
	if !f.hot && f.calls >= t.threshold {
		t.promote(m, idx)
	}
}

// onRet pops the tier frame, attributing its inclusive cycles.
func (t *tierEngine) onRet(m *Machine) {
	if n := len(t.stack); n > 0 {
		fr := t.stack[n-1]
		t.stack = t.stack[:n-1]
		t.fns[fr.fn].cycles += m.Stats.Cycles - fr.cyc
	}
}

// truncate unwinds the tier shadow stack to depth (a non-local THROW).
func (t *tierEngine) truncate(m *Machine, depth int) {
	for len(t.stack) > depth {
		fr := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.fns[fr.fn].cycles += m.Stats.Cycles - fr.cyc
	}
}

// restart resets the shadow stack for a fresh top-level call.
func (t *tierEngine) restart() { t.stack = t.stack[:0] }

// promote marks a function hot and installs its lowered blocks.
func (t *tierEngine) promote(m *Machine, idx int) {
	if !t.fns[idx].hot {
		t.fns[idx].hot = true
		t.promotions++
		if m.OnEvent != nil {
			m.OnEvent("tier-promote", m.Funcs[idx].Name, 0)
		}
	}
	t.install(m, idx)
}

// noteLanding records a control transfer observed to land inside a
// lowered block (m.pc is mid-block) and re-fuses the owning function
// with the landing as a permanent block boundary. Execution is already
// correct without this — mid-block PCs dispatch their base entries —
// so the re-fusion is purely an adaptation of block shape to the
// program's observed control flow.
func (t *tierEngine) noteLanding(m *Machine, pc int) {
	if t.landings == nil {
		t.landings = map[int]bool{}
	}
	if t.landings[pc] {
		return
	}
	t.landings[pc] = true
	if idx := m.funcAtPC(pc); idx >= 0 && idx < len(t.fns) && t.fns[idx].hot {
		t.refusions++
		if m.OnEvent != nil {
			m.OnEvent("tier-refusion", m.Funcs[idx].Name, 0)
		}
		t.install(m, idx)
	} else if pc < len(m.tierHeads) {
		m.tierHeads[pc] = true
	}
}

// funcAtPC finds the function whose [Entry, End) region contains pc, or
// -1. Funcs are appended in code order, so Entry is ascending.
func (m *Machine) funcAtPC(pc int) int {
	lo, hi := 0, len(m.Funcs)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Funcs[mid].Entry <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return -1
	}
	if f := &m.Funcs[lo-1]; pc < f.End {
		return lo - 1
	}
	return -1
}

// tierTerminates reports whether ins always ends a basic block.
func tierTerminates(ins *Instr) bool {
	switch ins.Op {
	case OpCALL, OpCALLF, OpTCALL, OpTCALLF, OpRET, OpHALT:
		return true
	case OpCALLSQ:
		sq := int(ins.TagArg)
		return sq == SQApplyList || sq == SQThrow
	}
	return jumpOps[ins.Op] && ins.Op != OpCATCH
}

// install rebuilds the fused overlay for function idx with lowered
// basic-block superinstructions. Safe to call while the function is
// executing or live on the call stack: decFused entries are replaced in
// place (Run's cached slice header stays valid) and in-flight closures
// are value copies.
func (t *tierEngine) install(m *Machine, idx int) {
	if m.noFuse {
		// Under -nofuse decFused aliases decBase; there is no overlay to
		// rewrite. The function stays marked hot and installs if fusion
		// is re-enabled.
		return
	}
	fd := &m.Funcs[idx]
	lo, hi := fd.Entry, fd.End
	if lo >= hi || hi > len(m.decBase) || hi > len(m.decFused) {
		return
	}

	// Block leaders: the entry, every branch/CATCH target, the return
	// points after CALL/CALLF and SQApplyList, and observed landings.
	heads := map[int]bool{lo: true}
	for pc := lo; pc < hi; pc++ {
		ins := &m.Code[pc]
		if jumpOps[ins.Op] && ins.target > lo && ins.target < hi {
			heads[ins.target] = true
		}
		switch ins.Op {
		case OpCALL, OpCALLF:
			if pc+1 < hi {
				heads[pc+1] = true
			}
		case OpCALLSQ:
			if int(ins.TagArg) == SQApplyList && pc+1 < hi {
				heads[pc+1] = true
			}
		}
	}
	for pc := range t.landings {
		if pc > lo && pc < hi {
			heads[pc] = true
		}
	}

	// Reset the function's overlay (dropping any static fused groups and
	// previously installed blocks), then lower the whole region into one
	// ops array. Jumps whose target lies inside the region resolve to an
	// executor index, so loops run inside runBlock without returning to
	// the dispatch loop; every head gets an entry closure into the shared
	// array.
	copy(m.decFused[lo:hi], m.decBase[lo:hi])
	for len(m.tierHeads) < len(m.decBase) {
		m.tierHeads = append(m.tierHeads, true)
	}
	ops := make([]lop, hi-lo)
	for i := range ops {
		ops[i] = lowerOne(m, lo+i)
	}
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case lJmp, lJccRI, lJccRR, lFJcc, lJNil, lJTag, lJTagX, lJEqW:
			if tgt := int(op.target); tgt >= lo && tgt < hi {
				op.aux = int32(tgt - lo)
			} else {
				op.aux = -1
			}
		}
	}
	for pc := lo; pc < hi; pc++ {
		if !heads[pc] {
			m.tierHeads[pc] = false
			continue
		}
		m.tierHeads[pc] = true
		start := pc - lo
		if ops[start].kind == lLast {
			// A lone generic control transfer: the base entry already
			// dispatches it with no executor overhead.
			continue
		}
		m.decFused[pc] = dinstr{
			// n promises Run's overshoot guard an upper bound on the
			// instructions one dispatch can retire between jump checks;
			// runBlock's own guard keeps the promise across internal
			// jumps.
			n: int32(hi - lo),
			run: func(m *Machine) error {
				return m.runBlock(ops, start)
			},
		}
		t.loweredBlocks++
	}
	t.loweredInstrs += int64(hi - lo)
}

// blockChunk bounds the instructions retired inside one runBlock entry:
// internal back-edges return to the dispatch loop after this many, so
// interrupts and the step limit are checked with bounded latency.
const blockChunk = 2048

// --- lowered form -----------------------------------------------------

type lopKind uint8

// Kinds at or below lLast run through their base closure (which does its
// own tick); kinds above are accounted by runBlock itself.
const (
	lBase lopKind = iota // generic fall-through instruction
	lLast                // generic control transfer, ends the block
	lNop
	lMovRR    // reg := reg
	lMovRI    // reg := imm
	lMovRX    // reg := mem[addr]
	lMovXR    // mem[addr] := reg
	lMovXI    // mem[addr] := imm
	lMovXX    // mem[addr2] := mem[addr]
	lMovP     // reg := Ptr(tag, addr)
	lAddRI    // reg := reg + k (SUB pre-negated)
	lIArith   // ADD/SUB/MULT/ASH, register operands
	lIArithRI // reg := reg op imm
	lIArithIR // reg := imm op reg
	lIArithRX // reg := reg op mem[addr]
	lIArithXR // reg := mem[addr] op reg
	lFArith   // FADD..FMIN, register operands
	lFArithRX // reg := reg fop mem[addr]
	lFArithXR // reg := mem[addr] fop reg
	lFUnary   // FSIN..FIX, register operands
	lJmp
	lJccRI // int cond jump, reg vs imm
	lJccRR // int cond jump, reg vs reg
	lFJcc  // float cond jump, reg vs reg
	lJNil  // JNIL/JNNIL reg
	lJTag  // JTAG/JNTAG reg
	lJTagX // JTAG/JNTAG mem[addr]
	lJEqW  // JEQW/JNEW reg, reg
	lPushR
	lPushI
	lPushX // push mem[addr]
	lPopR
	lPop0
	lSqArith     // numeric CALLSQ with inlined fastNum
	lSqCons      // CALLSQ kons
	lSqCarCdr    // CALLSQ car/cdr
	lSqFixCons   // CALLSQ fixnum-cons
	lSqCertify   // CALLSQ certify
	lSqSpecRead  // CALLSQ special-read through a cached handle
	lSqSpecWrite // CALLSQ special-write through a cached handle
	lCallIC      // CALL/CALLF through an inline cache, ends the block
	lTCallIC     // TCALL/TCALLF through an inline cache, ends the block
	lRet
)

// lop is one lowered instruction. Memory addressing reuses the MIdx
// shape (off + R[s] + R[x]<<shift, NoReg slots skipped), which also
// covers MMem (x=NoReg) and MAbs (s=x=NoReg). lMovXX carries a second
// address (the store side) in the *2 fields.
type lop struct {
	kind   lopKind
	op     Op
	d      uint8 // dst register / compared register / pushed register
	s      uint8 // src register / addr base / left operand
	x      uint8 // addr index / right operand
	shift  uint8
	s2     uint8 // second-address base
	x2     uint8 // second-address index
	shift2 uint8
	want   bool
	tag    Tag
	imm    Word
	off    int64 // addr offset / immediate operand / car-cdr offset
	off2   int64 // second-address offset
	cost   int64
	pc     int32
	target int32
	aux    int32 // SQ routine index / call nargs / mem-arith register operand
	base   dexec
	ic     *callCache
}

func intCondVal(op Op, x, y int64) bool {
	switch op {
	case OpJEQ:
		return x == y
	case OpJNE:
		return x != y
	case OpJLT:
		return x < y
	case OpJLE:
		return x <= y
	case OpJGT:
		return x > y
	}
	return x >= y
}

func floatCondVal(op Op, x, y float64) bool {
	switch op {
	case OpFJEQ:
		return x == y
	case OpFJNE:
		return x != y
	case OpFJLT:
		return x < y
	case OpFJLE:
		return x <= y
	case OpFJGT:
		return x > y
	}
	return x >= y
}

// memShaped reports o names a memory location the lowered address form
// can compute (never fails; loads/stores still bounds-check).
func memShaped(o Operand) bool {
	return o.Mode == MMem || o.Mode == MAbs || o.Mode == MIdx
}

// setAddr fills the lowered address fields from a Mem/Abs/Idx operand.
func (o *lop) setAddr(src Operand) {
	switch src.Mode {
	case MMem:
		o.s, o.x, o.shift, o.off = src.Base, NoReg, 0, src.Off
	case MAbs:
		o.s, o.x, o.shift, o.off = NoReg, NoReg, 0, src.Off
	case MIdx:
		o.s, o.x, o.shift, o.off = src.Base, src.Index, src.Shift, src.Off
	}
}

// setAddr2 fills the second address (lMovXX's store side).
func (o *lop) setAddr2(src Operand) {
	switch src.Mode {
	case MMem:
		o.s2, o.x2, o.shift2, o.off2 = src.Base, NoReg, 0, src.Off
	case MAbs:
		o.s2, o.x2, o.shift2, o.off2 = NoReg, NoReg, 0, src.Off
	case MIdx:
		o.s2, o.x2, o.shift2, o.off2 = src.Base, src.Index, src.Shift, src.Off
	}
}

func (m *Machine) lAddr(op *lop) uint64 {
	a := op.off
	if op.s != NoReg {
		a += int64(m.regs[op.s].Bits)
	}
	if op.x != NoReg {
		a += int64(m.regs[op.x].Bits) << op.shift
	}
	return uint64(a)
}

// loadFast is the inlinable no-error slice of Machine.load: ok=false
// (a bad address) sends the caller to the full load for its diagnostic.
// Lowered blocks use it so the common stack/heap access stays inline;
// the generic engine keeps the single portable path.
func (m *Machine) loadFast(addr uint64) (Word, bool) {
	if IsStackAddr(addr) {
		return m.stack[addr-StackBase], true
	}
	if h := addr - HeapBase; h < uint64(len(m.heap)) {
		return m.heap[h], true
	}
	return Word{}, false
}

// storeFast is the inlinable no-error slice of Machine.store, write
// barrier included: lowered blocks mutate heap blocks through here, so
// the card dirty must match Machine.store exactly or the generational
// differential suite diverges.
func (m *Machine) storeFast(addr uint64, w Word) bool {
	if IsStackAddr(addr) {
		m.stack[addr-StackBase] = w
		return true
	}
	if h := addr - HeapBase; h < uint64(len(m.heap)) {
		m.heap[h] = w
		m.cards[h>>cardShift] = 1
		return true
	}
	return false
}

func (m *Machine) lAddr2(op *lop) uint64 {
	a := op.off2
	if op.s2 != NoReg {
		a += int64(m.regs[op.s2].Bits)
	}
	if op.x2 != NoReg {
		a += int64(m.regs[op.x2].Bits) << op.shift2
	}
	return uint64(a)
}

// intArithVal mirrors decIntArith's operator semantics exactly.
func intArithVal(op Op, x, y int64) int64 {
	switch op {
	case OpADD:
		return x + y
	case OpSUB:
		return x - y
	case OpMULT:
		return x * y
	}
	// OpASH
	if y >= 0 {
		return x << uint(y&63)
	}
	return x >> uint((-y)&63)
}

// floatArithVal mirrors decFloatArith's operator semantics exactly.
func floatArithVal(op Op, x, y float64) float64 {
	switch op {
	case OpFADD:
		return x + y
	case OpFSUB:
		return x - y
	case OpFMULT:
		return x * y
	case OpFDIV:
		return x / y
	case OpFMAX:
		return fmax(x, y)
	}
	return fmin(x, y)
}

// lowerOne selects the lowered form for Code[pc]. Anything without a
// register-shaped fast form falls back to its base closure (lBase for
// fall-through instructions, lLast for control transfers).
func lowerOne(m *Machine, pc int) lop {
	ins := &m.Code[pc]
	o := lop{op: ins.Op, cost: cycleCost[ins.Op], pc: int32(pc), target: int32(ins.target)}
	generic := func() lop {
		o.kind = lBase
		if tierTerminates(ins) {
			o.kind = lLast
		}
		o.base = m.decBase[pc].run
		return o
	}
	switch ins.Op {
	case OpNOP:
		o.kind = lNop
	case OpMOV:
		switch {
		case ins.A.Mode == MReg && ins.B.Mode == MReg:
			o.kind, o.d, o.s = lMovRR, ins.A.Base, ins.B.Base
		case ins.A.Mode == MReg && ins.B.Mode == MImm:
			o.kind, o.d, o.imm = lMovRI, ins.A.Base, ins.B.Imm
		case ins.A.Mode == MReg && memShaped(ins.B):
			o.kind, o.d = lMovRX, ins.A.Base
			o.setAddr(ins.B)
		case memShaped(ins.A) && ins.B.Mode == MReg:
			o.kind, o.d = lMovXR, ins.B.Base
			o.setAddr(ins.A)
		case memShaped(ins.A) && ins.B.Mode == MImm:
			o.kind, o.imm = lMovXI, ins.B.Imm
			o.setAddr(ins.A)
		case memShaped(ins.A) && memShaped(ins.B):
			o.kind = lMovXX
			o.setAddr(ins.B)
			o.setAddr2(ins.A)
		default:
			return generic()
		}
	case OpMOVP:
		if ins.A.Mode == MReg && memShaped(ins.B) {
			o.kind, o.d, o.tag = lMovP, ins.A.Base, Tag(ins.TagArg)
			o.setAddr(ins.B)
		} else {
			return generic()
		}
	case OpADD, OpSUB, OpMULT, OpASH:
		if ins.A.Mode != MReg {
			return generic()
		}
		d := ins.A.Base
		if ins.C.Mode == MNone {
			// 2-op: A = A op B.
			switch {
			case ins.B.Mode == MImm && (ins.Op == OpADD || ins.Op == OpSUB):
				k := ins.B.Imm.Int()
				if ins.Op == OpSUB {
					k = -k
				}
				o.kind, o.d, o.off = lAddRI, d, k
			case ins.B.Mode == MImm:
				o.kind, o.d, o.s, o.off = lIArithRI, d, d, ins.B.Imm.Int()
			case ins.B.Mode == MReg:
				o.kind, o.d, o.s, o.x = lIArith, d, d, ins.B.Base
			case memShaped(ins.B):
				o.kind, o.d, o.aux = lIArithRX, d, int32(d)
				o.setAddr(ins.B)
			default:
				return generic()
			}
			break
		}
		// 3-op: A = B op C.
		switch {
		case ins.B.Mode == MReg && ins.C.Mode == MReg:
			o.kind, o.d, o.s, o.x = lIArith, d, ins.B.Base, ins.C.Base
		case ins.B.Mode == MImm && ins.C.Mode == MReg:
			o.kind, o.d, o.x, o.off = lIArithIR, d, ins.C.Base, ins.B.Imm.Int()
		case ins.B.Mode == MReg && ins.C.Mode == MImm:
			o.kind, o.d, o.s, o.off = lIArithRI, d, ins.B.Base, ins.C.Imm.Int()
		case ins.B.Mode == MReg && memShaped(ins.C):
			o.kind, o.d, o.aux = lIArithRX, d, int32(ins.B.Base)
			o.setAddr(ins.C)
		case memShaped(ins.B) && ins.C.Mode == MReg:
			o.kind, o.d, o.aux = lIArithXR, d, int32(ins.C.Base)
			o.setAddr(ins.B)
		default:
			return generic()
		}
	case OpFADD, OpFSUB, OpFMULT, OpFDIV, OpFMAX, OpFMIN:
		if ins.A.Mode != MReg {
			return generic()
		}
		d := ins.A.Base
		if ins.C.Mode == MNone {
			switch {
			case ins.B.Mode == MReg:
				o.kind, o.d, o.s, o.x = lFArith, d, d, ins.B.Base
			case memShaped(ins.B):
				o.kind, o.d, o.aux = lFArithRX, d, int32(d)
				o.setAddr(ins.B)
			default:
				return generic()
			}
			break
		}
		switch {
		case ins.B.Mode == MReg && ins.C.Mode == MReg:
			o.kind, o.d, o.s, o.x = lFArith, d, ins.B.Base, ins.C.Base
		case ins.B.Mode == MReg && memShaped(ins.C):
			o.kind, o.d, o.aux = lFArithRX, d, int32(ins.B.Base)
			o.setAddr(ins.C)
		case memShaped(ins.B) && ins.C.Mode == MReg:
			o.kind, o.d, o.aux = lFArithXR, d, int32(ins.C.Base)
			o.setAddr(ins.B)
		default:
			return generic()
		}
	case OpFSIN, OpFCOS, OpFSQRT, OpFATAN, OpFEXP, OpFLOG, OpFABS, OpFNEG, OpFLT, OpFIX:
		if ins.A.Mode == MReg && ins.B.Mode == MReg {
			o.kind, o.d, o.s = lFUnary, ins.A.Base, ins.B.Base
		} else {
			return generic()
		}
	case OpJMP:
		o.kind = lJmp
	case OpJEQ, OpJNE, OpJLT, OpJLE, OpJGT, OpJGE:
		if ins.A.Mode == MReg && ins.B.Mode == MImm {
			o.kind, o.d, o.off = lJccRI, ins.A.Base, ins.B.Imm.Int()
		} else if ins.A.Mode == MReg && ins.B.Mode == MReg {
			o.kind, o.d, o.s = lJccRR, ins.A.Base, ins.B.Base
		} else {
			return generic()
		}
	case OpFJEQ, OpFJNE, OpFJLT, OpFJLE, OpFJGT, OpFJGE:
		if ins.A.Mode == MReg && ins.B.Mode == MReg {
			o.kind, o.d, o.s = lFJcc, ins.A.Base, ins.B.Base
		} else {
			return generic()
		}
	case OpJNIL, OpJNNIL:
		if ins.A.Mode == MReg {
			o.kind, o.d, o.want = lJNil, ins.A.Base, ins.Op == OpJNIL
		} else {
			return generic()
		}
	case OpJTAG, OpJNTAG:
		if ins.A.Mode == MReg {
			o.kind, o.d, o.tag, o.want = lJTag, ins.A.Base, Tag(ins.TagArg), ins.Op == OpJTAG
		} else if memShaped(ins.A) {
			o.kind, o.tag, o.want = lJTagX, Tag(ins.TagArg), ins.Op == OpJTAG
			o.setAddr(ins.A)
		} else {
			return generic()
		}
	case OpJEQW, OpJNEW:
		if ins.A.Mode == MReg && ins.B.Mode == MReg {
			o.kind, o.d, o.s, o.want = lJEqW, ins.A.Base, ins.B.Base, ins.Op == OpJEQW
		} else {
			return generic()
		}
	case OpPUSH:
		switch ins.A.Mode {
		case MReg:
			o.kind, o.d = lPushR, ins.A.Base
		case MImm:
			o.kind, o.imm = lPushI, ins.A.Imm
		default:
			if !memShaped(ins.A) {
				return generic()
			}
			o.kind = lPushX
			o.setAddr(ins.A)
		}
	case OpPOP:
		switch ins.A.Mode {
		case MNone:
			o.kind = lPop0
		case MReg:
			o.kind, o.d = lPopR, ins.A.Base
		default:
			return generic()
		}
	case OpCALLSQ:
		sq := int(ins.TagArg)
		o.aux = int32(sq)
		switch sq {
		case SQAdd, SQSub, SQMul, SQDiv, SQNumEq, SQLt, SQGt, SQLe, SQGe:
			o.kind = lSqArith
		case SQCons:
			o.kind = lSqCons
		case SQCar:
			o.kind, o.off = lSqCarCdr, 0
		case SQCdr:
			o.kind, o.off = lSqCarCdr, 1
		case SQFixnumCons:
			o.kind = lSqFixCons
		case SQCertify:
			o.kind = lSqCertify
		case SQSpecRead:
			o.kind = lSqSpecRead
		case SQSpecWrite:
			o.kind = lSqSpecWrite
		default:
			return generic()
		}
	case OpCALL, OpCALLF:
		o.aux = int32(ins.TagArg)
		if ins.A.Mode == MImm && ins.A.Imm.Tag == TagSymbol {
			o.kind, o.imm, o.ic = lCallIC, ins.A.Imm, &callCache{}
		} else if ins.A.Mode == MReg {
			o.kind, o.s, o.ic = lCallIC, ins.A.Base, &callCache{}
			o.imm = Word{} // resolved from the register at run time
			o.want = true  // register-keyed cache
		} else {
			return generic()
		}
	case OpTCALL, OpTCALLF:
		o.aux = int32(ins.TagArg)
		if ins.A.Mode == MImm && ins.A.Imm.Tag == TagSymbol {
			o.kind, o.imm, o.ic = lTCallIC, ins.A.Imm, &callCache{}
		} else if ins.A.Mode == MReg {
			o.kind, o.s, o.ic = lTCallIC, ins.A.Base, &callCache{}
			o.want = true
		} else {
			return generic()
		}
	case OpRET:
		o.kind = lRet
	default:
		return generic()
	}
	return o
}

// icTarget resolves a call site's operand word and checks/refills the
// inline cache. ok=false means the slow generic path must run with fnw.
func (m *Machine) icTarget(op *lop) (fnw Word, fn, entry int, ok bool) {
	var observed Word
	if op.want {
		// Register-keyed: validate against the register's current word.
		observed = m.regs[op.s]
		fnw = observed
	} else {
		// Symbol-keyed: validate against the symbol's function cell.
		observed = m.Syms[op.imm.Bits].Function
		fnw = op.imm
	}
	ic := op.ic
	if ic.valid && ic.cell == observed {
		return fnw, int(ic.fn), int(ic.entry), true
	}
	if observed.Tag == TagFunc {
		idx := int(observed.Bits)
		ic.cell, ic.fn, ic.entry, ic.valid = observed, int32(idx), int32(m.Funcs[idx].Entry), true
		if t := m.tier; t != nil {
			t.cacheFills++
		}
		return fnw, idx, int(ic.entry), true
	}
	return fnw, 0, 0, false
}

// enterFrameIC is the CALL microcode for a cache-verified direct
// function (nil environment), with the four frame pushes bounds-checked
// once. ok=false declines near the stack limit without mutating
// anything; the caller takes the generic path for exact overflow
// semantics.
func (m *Machine) enterFrameIC(nargs, retPC, fn, entry int) bool {
	sp := m.regs[RegSP].Bits
	if !IsStackAddr(sp) || sp+4 > StackLimit {
		return false
	}
	b := sp - StackBase
	m.stack[b] = RawInt(int64(nargs))
	m.stack[b+1] = RawInt(int64(retPC))
	m.stack[b+2] = m.regs[RegFP]
	m.stack[b+3] = m.regs[RegEP]
	nsp := RawInt(int64(sp + 4))
	m.regs[RegSP] = nsp
	if d := int64(sp + 4 - StackBase); d > m.Stats.MaxStack {
		m.Stats.MaxStack = d
	}
	m.regs[RegFP] = nsp
	m.regs[RegEP] = NilWord
	m.regs[RegR3] = RawInt(int64(nargs))
	m.pc = entry
	m.Stats.Calls++
	if p := m.prof; p != nil {
		p.call(m, fn)
	}
	if t := m.tier; t != nil {
		t.onCall(m, fn)
	}
	return true
}

// tailCallIC is the TCALL microcode for a cache-verified direct
// function: the k outgoing arguments move down over the old frame with
// one copy (no intermediate slice). ok=false declines on any bound
// irregularity without mutating anything.
func (m *Machine) tailCallIC(k, fn, entry int) bool {
	fp := int64(m.regs[RegFP].Bits)
	sp := int64(m.regs[RegSP].Bits)
	if fp-4 < StackBase || fp > StackLimit || sp-int64(k) < StackBase || sp > StackLimit {
		return false
	}
	fb := uint64(fp) - StackBase
	nw := m.stack[fb-4].Int()
	newBase := fp - 4 - nw
	if newBase < StackBase || newBase+int64(k)+4 > StackLimit {
		return false
	}
	savedRet := m.stack[fb-3]
	savedFP := m.stack[fb-2]
	savedEP := m.stack[fb-1]
	dst := uint64(newBase) - StackBase
	copy(m.stack[dst:dst+uint64(k)], m.stack[uint64(sp)-StackBase-uint64(k):uint64(sp)-StackBase])
	m.stack[dst+uint64(k)] = RawInt(int64(k))
	m.stack[dst+uint64(k)+1] = savedRet
	m.stack[dst+uint64(k)+2] = savedFP
	m.stack[dst+uint64(k)+3] = savedEP
	nsp := newBase + int64(k) + 4
	m.regs[RegSP] = RawInt(nsp)
	if d := nsp - StackBase; d > m.Stats.MaxStack {
		m.Stats.MaxStack = d
	}
	m.regs[RegFP] = m.regs[RegSP]
	m.regs[RegEP] = NilWord
	m.regs[RegR3] = RawInt(int64(k))
	m.pc = entry
	if p := m.prof; p != nil {
		p.tail(m, fn)
	}
	if t := m.tier; t != nil {
		t.onTail(m, fn)
	}
	return true
}

// runBlock executes lowered code from ops[i]. The step/cycle/MOV meters
// accumulate in locals and spill to Stats at exits, before any
// operation that can allocate (a heap-exhaustion panic must not lose
// retired instructions), and on error paths. m.pc is materialized
// before every fallible or allocating operation so errors, GC and
// recovery always see the faulting instruction's PC; pure register and
// jump operations skip both stores. Each lop retires exactly one
// architectural instruction, counted before its work runs (tick order),
// so a faulting instruction is already counted.
//
// A jump whose target lies inside the function (op.aux >= 0) continues
// inside the executor, so hot loops never leave runBlock — unless the
// chunk bound is hit or the next straight-line segment could cross
// StepLimit, in which case the meters spill and control returns to Run
// with m.pc at the target (the machine is consistent at every
// instruction boundary, so bailing out mid-trace is always safe).
func (m *Machine) runBlock(ops []lop, i int) error {
	var instrs, cycles, movs int64
	// n counts every op executed in this call and, unlike instrs, never
	// resets at spill sites: it is the chunk bound that guarantees
	// control returns to Run (the only place interrupts are polled) even
	// for loops whose body spills every iteration (e.g. around a CONS).
	var n int64
	p := m.prof
	for {
		op := &ops[i]
		n++
		if op.kind > lLast {
			if p != nil {
				p.note(op.op, op.cost)
			}
			instrs++
			cycles += op.cost
		}
		switch op.kind {
		case lBase:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			instrs, cycles, movs = 0, 0, 0
			if err := op.base(m); err != nil {
				return err
			}
			if m.pc != int(op.pc)+1 {
				// The constituent transferred control (a non-jumping
				// instruction never does; defensive): end the block.
				return nil
			}
		case lLast:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			return op.base(m)
		case lNop:
			// counted above
		case lMovRR:
			m.regs[op.d] = m.regs[op.s]
			movs++
		case lMovRI:
			m.regs[op.d] = op.imm
			movs++
		case lMovRX:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.regs[op.d] = v
			movs++
		case lMovXR:
			if !m.storeFast(m.lAddr(op), m.regs[op.d]) {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return m.store(m.lAddr(op), m.regs[op.d])
			}
			movs++
		case lMovXI:
			if !m.storeFast(m.lAddr(op), op.imm) {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return m.store(m.lAddr(op), op.imm)
			}
			movs++
		case lMovXX:
			m.pc = int(op.pc)
			v, err := m.load(m.lAddr(op))
			if err == nil {
				err = m.store(m.lAddr2(op), v)
			}
			if err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
			movs++
		case lMovP:
			m.regs[op.d] = Ptr(op.tag, m.lAddr(op))
		case lAddRI:
			m.regs[op.d] = RawInt(m.regs[op.d].Int() + op.off)
		case lIArith:
			m.regs[op.d] = RawInt(intArithVal(op.op, m.regs[op.s].Int(), m.regs[op.x].Int()))
		case lIArithRI:
			m.regs[op.d] = RawInt(intArithVal(op.op, m.regs[op.s].Int(), op.off))
		case lIArithIR:
			m.regs[op.d] = RawInt(intArithVal(op.op, op.off, m.regs[op.x].Int()))
		case lIArithRX:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.regs[op.d] = RawInt(intArithVal(op.op, m.regs[op.aux].Int(), v.Int()))
		case lIArithXR:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.regs[op.d] = RawInt(intArithVal(op.op, v.Int(), m.regs[op.aux].Int()))
		case lFArith:
			m.regs[op.d] = RawFloat(floatArithVal(op.op, m.regs[op.s].Float(), m.regs[op.x].Float()))
		case lFArithRX:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.regs[op.d] = RawFloat(floatArithVal(op.op, m.regs[op.aux].Float(), v.Float()))
		case lFArithXR:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.regs[op.d] = RawFloat(floatArithVal(op.op, v.Float(), m.regs[op.aux].Float()))
		case lFUnary:
			v := m.regs[op.s]
			var r Word
			switch op.op {
			case OpFSIN:
				r = RawFloat(sinCycles(v.Float()))
			case OpFCOS:
				r = RawFloat(cosCycles(v.Float()))
			case OpFSQRT:
				r = RawFloat(sqrt(v.Float()))
			case OpFATAN:
				r = RawFloat(atan(v.Float()))
			case OpFEXP:
				r = RawFloat(exp(v.Float()))
			case OpFLOG:
				r = RawFloat(logf(v.Float()))
			case OpFABS:
				r = RawFloat(fabs(v.Float()))
			case OpFNEG:
				r = RawFloat(-v.Float())
			case OpFLT:
				r = RawFloat(float64(v.Int()))
			case OpFIX:
				r = RawInt(int64(v.Float()))
			}
			m.regs[op.d] = r
		// Jumps: a taken jump whose target lies inside the function
		// (op.aux is its executor index) continues the trace right here,
		// as long as the chunk bound has room and the next straight-line
		// segment — at most len(ops) instructions before the next jump
		// check — cannot cross StepLimit (the same promise Run's d.n
		// pre-dispatch guard makes on entry, so -max-steps stays exact).
		// A not-taken conditional jump falls through to the next op
		// without spilling at all. Only a trace exit spills and returns.
		case lJmp:
			if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
				i = int(op.aux)
				continue
			}
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			m.pc = int(op.target)
			return nil
		case lJccRI:
			if intCondVal(op.op, m.regs[op.d].Int(), op.off) {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lJccRR:
			if intCondVal(op.op, m.regs[op.d].Int(), m.regs[op.s].Int()) {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lFJcc:
			if floatCondVal(op.op, m.regs[op.d].Float(), m.regs[op.s].Float()) {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lJNil:
			if (m.regs[op.d].Tag == TagNil) == op.want {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lJTag:
			if (m.regs[op.d].Tag == op.tag) == op.want {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lJTagX:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			if (v.Tag == op.tag) == op.want {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lJEqW:
			if (m.regs[op.d] == m.regs[op.s]) == op.want {
				if op.aux >= 0 && n < blockChunk && m.Stats.Instrs+instrs+int64(len(ops)) <= m.StepLimit {
					i = int(op.aux)
					continue
				}
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				m.pc = int(op.target)
				return nil
			}
		case lPushR:
			m.pc = int(op.pc)
			if err := m.push(m.regs[op.d]); err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
		case lPushI:
			m.pc = int(op.pc)
			if err := m.push(op.imm); err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
		case lPushX:
			v, ok := m.loadFast(m.lAddr(op))
			if !ok {
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(m.lAddr(op))
				return err
			}
			m.pc = int(op.pc)
			if err := m.push(v); err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
		case lPopR:
			m.pc = int(op.pc)
			v, err := m.pop()
			if err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
			m.regs[op.d] = v
		case lPop0:
			m.pc = int(op.pc)
			if _, err := m.pop(); err != nil {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return err
			}
		case lSqArith:
			// The fastNum flonum path and genericNum both allocate, so
			// spill before running (a heap-exhaustion panic skips the
			// error returns). The routine's own cost lands directly on
			// Stats like callSQ's preamble would.
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles + sqCost[op.aux]
			m.Stats.Movs += movs
			instrs, cycles, movs = 0, 0, 0
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			a, b := m.regs[RegA], m.regs[RegB]
			if out, ok := m.fastNum(int(op.aux), a, b); ok {
				m.regs[RegA] = out
				break
			}
			x, err := m.numValue(a)
			if err != nil {
				return err
			}
			y, err := m.numValue(b)
			if err != nil {
				return err
			}
			out, err := m.genericNum(int(op.aux), x, y)
			if err != nil {
				return &RuntimeError{PC: m.pc, Msg: err.Error()}
			}
			m.regs[RegA] = out
		case lSqCons:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles + sqCost[op.aux]
			m.Stats.Movs += movs
			instrs, cycles, movs = 0, 0, 0
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			m.regs[RegA] = m.Cons(m.regs[RegA], m.regs[RegB])
		case lSqCarCdr:
			cycles += sqCost[op.aux]
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			a := m.regs[RegA]
			if a.Tag == TagNil {
				m.regs[RegA] = NilWord
				break
			}
			m.pc = int(op.pc)
			if a.Tag != TagCons {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				return &RuntimeError{PC: m.pc, Msg: "car/cdr of non-list " + a.String()}
			}
			w, ok := m.loadFast(a.Bits + uint64(op.off))
			if !ok {
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				_, err := m.load(a.Bits + uint64(op.off))
				return err
			}
			m.regs[RegA] = w
		case lSqFixCons:
			cycles += sqCost[op.aux]
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			m.regs[RegA] = FixnumWord(m.regs[RegA].Int())
		case lSqCertify:
			cycles += sqCost[op.aux]
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			m.Stats.Certifies++
			if a := m.regs[RegA]; a.Tag == TagFlonum && IsStackAddr(a.Bits) {
				// The copy path allocates: spill first.
				m.pc = int(op.pc)
				m.Stats.Instrs += instrs
				m.Stats.Cycles += cycles
				m.Stats.Movs += movs
				instrs, cycles, movs = 0, 0, 0
				v, err := m.load(a.Bits)
				if err != nil {
					return err
				}
				m.Stats.CertifyCopies++
				m.regs[RegA] = m.ConsFlonum(v.Float())
			}
		case lSqSpecRead:
			cycles += sqCost[op.aux]
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			if h := m.regs[RegA].Int(); h >= 0 {
				if int(h) >= len(m.bindStack) {
					m.pc = int(op.pc)
					m.Stats.Instrs += instrs
					m.Stats.Cycles += cycles
					m.Stats.Movs += movs
					return &RuntimeError{PC: m.pc, Msg: "stale special handle"}
				}
				m.regs[RegA] = m.bindStack[h].val
			} else {
				sym := int(-h - 1)
				if !m.Syms[sym].HasValue {
					m.pc = int(op.pc)
					m.Stats.Instrs += instrs
					m.Stats.Cycles += cycles
					m.Stats.Movs += movs
					return &RuntimeError{PC: m.pc, Msg: "unbound variable " + m.Syms[sym].Name}
				}
				m.regs[RegA] = m.Syms[sym].Value
			}
		case lSqSpecWrite:
			cycles += sqCost[op.aux]
			m.Stats.SQCalls++
			if p != nil {
				p.noteExtra(OpCALLSQ, sqCost[op.aux])
			}
			b := m.regs[RegB]
			if h := m.regs[RegA].Int(); h >= 0 {
				if int(h) >= len(m.bindStack) {
					m.pc = int(op.pc)
					m.Stats.Instrs += instrs
					m.Stats.Cycles += cycles
					m.Stats.Movs += movs
					return &RuntimeError{PC: m.pc, Msg: "stale special handle"}
				}
				m.bindStack[h].val = b
			} else {
				sym := int(-h - 1)
				m.Syms[sym].Value = b
				m.Syms[sym].HasValue = true
			}
			m.regs[RegA] = b
		case lCallIC:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			fnw, fn, entry, ok := m.icTarget(op)
			if ok && m.enterFrameIC(int(op.aux), int(op.pc)+1, fn, entry) {
				return nil
			}
			return m.enterFrame(int(op.aux), int(op.pc)+1, fnw, op.op == OpCALLF)
		case lTCallIC:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			m.Stats.TailCalls++
			fnw, fn, entry, ok := m.icTarget(op)
			if ok && m.tailCallIC(int(op.aux), fn, entry) {
				return nil
			}
			return m.tailCall(int(op.aux), fnw)
		case lRet:
			m.pc = int(op.pc)
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			return m.ret()
		}
		if i++; i == len(ops) {
			// Fell off the function's end (the assembler always closes a
			// unit with a control transfer, so this is defensive).
			m.Stats.Instrs += instrs
			m.Stats.Cycles += cycles
			m.Stats.Movs += movs
			m.pc = int(ops[i-1].pc) + 1
			return nil
		}
	}
}
