package s1

import (
	"testing"
)

// fuzzOperand maps four fuzz bytes to an operand, deliberately covering
// invalid shapes: out-of-range register numbers, NoReg in non-indexed
// modes, label operands with no label, huge shifts, and immediates with
// arbitrary tags.
func fuzzOperand(b0, b1, b2, b3 byte) Operand {
	return Operand{
		Mode:  Mode(b0 % 7), // includes MNone and MLabel
		Base:  b1,
		Index: b2,
		Shift: b3 % 16,
		Off:   int64(int16(uint16(b2)<<8 | uint16(b3))),
		Imm:   Word{Tag: Tag(b1 % 32), Bits: uint64(b0) | uint64(b3)<<8},
	}
}

// fuzzInstr maps a 16-byte chunk to one instruction. The opcode byte
// ranges over the whole uint8 space, so undefined opcodes are part of
// the stream; TagArg is sign-extended to cover negative counts.
func fuzzInstr(b []byte) Instr {
	return Instr{
		Op:     Op(b[0]),
		TagArg: int64(int8(b[1])),
		target: int(int16(uint16(b[2]) | uint16(b[3])<<8)),
		A:      fuzzOperand(b[4], b[5], b[6], b[7]),
		B:      fuzzOperand(b[8], b[9], b[10], b[11]),
		C:      fuzzOperand(b[12], b[13], b[14], b[15]),
	}
}

// FuzzDecode feeds random instruction streams through pre-decoding,
// superinstruction fusion, and bounded execution. The contract is the
// daemon's: decoding must never panic, and running an arbitrary decoded
// stream must end in a clean halt or a RuntimeError — the run loop's
// recover barrier converts internal faults, and nothing may escape it.
func FuzzDecode(f *testing.F) {
	// A plausible program: MOV, ADD, compare-jump, PUSH/POP, CALLSQ, HALT.
	seed := make([]byte, 0, 6*16)
	for _, ins := range [][16]byte{
		{byte(OpMOV), 0, 0, 0, 1, 1, 0, 0, 2, 0, 0, 7},
		{byte(OpADD), 0, 0, 0, 1, 1, 0, 0, 2, 0, 0, 3},
		{byte(OpJLT), 0, 1, 0, 1, 1, 0, 0, 2, 0, 0, 9},
		{byte(OpPUSH), 0, 0, 0, 1, 1},
		{byte(OpPOP), 0, 0, 0, 1, 2},
		{byte(OpHALT)},
	} {
		seed = append(seed, ins[:]...)
	}
	f.Add(seed)
	f.Add([]byte{byte(OpJMP), 0, 0xFF, 0x7F}) // jump far out of range
	f.Add([]byte{0xFF, 0x80, 0, 0, 6, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 16
		if n == 0 {
			return
		}
		if n > 512 {
			n = 512
		}
		for _, noFuse := range []bool{false, true} {
			m := New()
			m.SetNoFuse(noFuse)
			// Budgets keep hostile streams cheap: a runaway loop trips the
			// step limit, a giant ALLOC trips the heap guard.
			m.StepLimit = 4096
			m.HeapLimit = 1 << 16
			for i := 0; i < n; i++ {
				m.Code = append(m.Code, fuzzInstr(data[i*16:(i+1)*16]))
			}
			m.ensureDecoded() // must not panic, however malformed the stream

			m.regs[RegSP] = RawInt(StackBase)
			m.regs[RegFP] = RawInt(StackBase)
			m.pc = 1 // skip the top-level HALT at index 0
			// Any error is acceptable; a panic escaping Run is the bug.
			_ = m.Run()
		}
	})
}
