package s1

// Runtime profiling for the simulator: per-opcode histograms,
// function-level cycle attribution keyed off the function table, GC
// pause meters, binding/catch stack high-water marks, and collapsed call
// stacks suitable for flamegraph tools.
//
// Profiling is exact, not sampled: a shadow stack of function indices
// mirrors the machine's call frames (maintained at CALL/TCALL/RET and
// non-local THROW unwinds), every executed instruction's cycles are
// charged to the opcode and to the function on top of the shadow stack,
// and cycles accumulate against the current collapsed-stack signature,
// flushed whenever the stack changes. When m.prof is nil — the default —
// the hot path pays exactly one nil check per instruction.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// NumOps is the number of opcodes (for histogram arrays).
const NumOps = int(OpHALT) + 1

// Profile accumulates runtime profiling data for one machine. It is not
// safe for concurrent use (the simulator is single-threaded).
type Profile struct {
	// OpCount and OpCycles are per-opcode execution counts and cycle
	// totals. OpCycles[OpCALLSQ] includes each SQ routine's own cost.
	OpCount  [NumOps]int64
	OpCycles [NumOps]int64
	// FnCycles, FnInstrs and FnCalls attribute execution to the function
	// table, indexed by function-descriptor index.
	FnCycles []int64
	FnInstrs []int64
	FnCalls  []int64
	// GC pause meters.
	GCPauseCount int64
	GCPauseTotal time.Duration
	GCPauseMax   time.Duration
	// High-water marks of the deep-binding and catch stacks.
	BindHighWater  int
	CatchHighWater int

	stack     []int // shadow stack of function indices
	pending   int64 // cycles accrued against the current stack
	collapsed map[string]int64
}

// EnableProfile turns profiling on (idempotent) and returns the profile.
func (m *Machine) EnableProfile() *Profile {
	if m.prof == nil {
		m.prof = &Profile{collapsed: map[string]int64{}}
	}
	return m.prof
}

// Profile returns the machine's profile, or nil when profiling is off.
func (m *Machine) Profile() *Profile { return m.prof }

// Reset clears all accumulated profile data, keeping profiling enabled.
// The shadow stack survives (it mirrors live machine frames).
func (p *Profile) Reset() {
	stack := p.stack
	*p = Profile{collapsed: map[string]int64{}}
	p.stack = stack
}

// note charges one executed instruction to the opcode and the current
// function.
func (p *Profile) note(op Op, cycles int64) {
	p.OpCount[op]++
	p.OpCycles[op] += cycles
	if n := len(p.stack); n > 0 {
		fn := p.stack[n-1]
		p.FnCycles[fn] += cycles
		p.FnInstrs[fn]++
	}
	p.pending += cycles
}

// noteExtra charges additional cycles (an SQ routine's body) to an
// already-counted instruction.
func (p *Profile) noteExtra(op Op, cycles int64) {
	p.OpCycles[op] += cycles
	if n := len(p.stack); n > 0 {
		p.FnCycles[p.stack[n-1]] += cycles
	}
	p.pending += cycles
}

func (p *Profile) ensure(n int) {
	for len(p.FnCycles) < n {
		p.FnCycles = append(p.FnCycles, 0)
		p.FnInstrs = append(p.FnInstrs, 0)
		p.FnCalls = append(p.FnCalls, 0)
	}
}

// flush charges the pending cycles to the current collapsed stack.
func (p *Profile) flush(m *Machine) {
	if p.pending == 0 {
		return
	}
	if len(p.stack) > 0 {
		names := make([]string, len(p.stack))
		for i, fn := range p.stack {
			names[i] = m.Funcs[fn].Name
		}
		p.collapsed[strings.Join(names, ";")] += p.pending
	}
	p.pending = 0
}

func (p *Profile) call(m *Machine, idx int) {
	p.flush(m)
	p.ensure(len(m.Funcs))
	p.stack = append(p.stack, idx)
	p.FnCalls[idx]++
}

func (p *Profile) tail(m *Machine, idx int) {
	p.flush(m)
	p.ensure(len(m.Funcs))
	if n := len(p.stack); n > 0 {
		p.stack[n-1] = idx
	} else {
		p.stack = append(p.stack, idx)
	}
	p.FnCalls[idx]++
}

func (p *Profile) ret(m *Machine) {
	p.flush(m)
	if n := len(p.stack); n > 0 {
		p.stack = p.stack[:n-1]
	}
}

// truncate unwinds the shadow stack to depth (a non-local THROW).
func (p *Profile) truncate(m *Machine, depth int) {
	p.flush(m)
	if depth >= 0 && depth <= len(p.stack) {
		p.stack = p.stack[:depth]
	}
}

// restart resets the shadow stack for a fresh top-level call.
func (p *Profile) restart(m *Machine) {
	p.flush(m)
	p.stack = p.stack[:0]
}

func (p *Profile) depth() int {
	if p == nil {
		return 0
	}
	return len(p.stack)
}

// gcPause records one collection's stop-the-world duration.
func (p *Profile) gcPause(d time.Duration) {
	p.GCPauseCount++
	p.GCPauseTotal += d
	if d > p.GCPauseMax {
		p.GCPauseMax = d
	}
}

// WriteProfile prints the runtime profile tables: the opcode histogram
// (by cycles), function-level attribution, GC pauses and stack
// high-water marks. Ordering is deterministic.
func (m *Machine) WriteProfile(w io.Writer) {
	p := m.prof
	if p == nil {
		fmt.Fprintln(w, ";; profiling not enabled")
		return
	}
	p.flush(m)
	fmt.Fprintln(w, ";; --- runtime profile ---")
	fmt.Fprintln(w, ";; opcode histogram (by cycles):")
	ops := make([]Op, 0, NumOps)
	for op := 0; op < NumOps; op++ {
		if p.OpCount[op] > 0 {
			ops = append(ops, Op(op))
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		ci, cj := p.OpCycles[ops[i]], p.OpCycles[ops[j]]
		if ci != cj {
			return ci > cj
		}
		return ops[i].String() < ops[j].String()
	})
	fmt.Fprintf(w, ";;   %-12s %12s %12s\n", "opcode", "execs", "cycles")
	for _, op := range ops {
		fmt.Fprintf(w, ";;   %-12s %12d %12d\n", op.String(), p.OpCount[op], p.OpCycles[op])
	}
	fmt.Fprintln(w, ";; function cycles:")
	fns := make([]int, 0, len(p.FnCycles))
	for i := range p.FnCycles {
		if p.FnCycles[i] > 0 || p.FnCalls[i] > 0 {
			fns = append(fns, i)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		ci, cj := p.FnCycles[fns[i]], p.FnCycles[fns[j]]
		if ci != cj {
			return ci > cj
		}
		return m.Funcs[fns[i]].Name < m.Funcs[fns[j]].Name
	})
	fmt.Fprintf(w, ";;   %-24s %10s %12s %12s\n", "function", "calls", "instrs", "cycles")
	for _, fn := range fns {
		fmt.Fprintf(w, ";;   %-24s %10d %12d %12d\n",
			m.Funcs[fn].Name, p.FnCalls[fn], p.FnInstrs[fn], p.FnCycles[fn])
	}
	fmt.Fprintf(w, ";; gc: %d pauses, total %s, max %s (%d collections, %d words reclaimed)\n",
		p.GCPauseCount, p.GCPauseTotal.Round(time.Microsecond),
		p.GCPauseMax.Round(time.Microsecond),
		m.GCMeters.Collections, m.GCMeters.WordsReclaimed)
	fmt.Fprintf(w, ";; high water: value stack %d words, binding stack %d, catch stack %d\n",
		m.Stats.MaxStack, p.BindHighWater, p.CatchHighWater)
}

// WriteCollapsed emits the collapsed call stacks in the
// semicolon-joined "folded" format consumed by flamegraph tools, one
// "stack cycles" line per distinct stack, sorted for determinism.
func (m *Machine) WriteCollapsed(w io.Writer) {
	p := m.prof
	if p == nil {
		return
	}
	p.flush(m)
	keys := make([]string, 0, len(p.collapsed))
	for k := range p.collapsed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, p.collapsed[k])
	}
}

// Collapsed returns a copy of the collapsed-stack cycle map.
func (p *Profile) Collapsed() map[string]int64 {
	out := make(map[string]int64, len(p.collapsed))
	for k, v := range p.collapsed {
		out[k] = v
	}
	return out
}
