// Package interp is a reference interpreter for the dialect, operating
// directly on the internal tree. It serves three roles in the
// reproduction:
//
//   - the semantic oracle for differential testing of compiled code,
//   - the interpreted baseline of the benchmarks, and
//   - the apply engine behind the optimizer's compile-time expression
//     evaluation ("invoking primitive functions known to be free of side
//     effects on constant operands, a very convenient thing to do in LISP
//     with the apply operator!").
//
// The evaluator loops on tail positions, so tail-recursive Lisp runs in
// constant Go stack — the interpreter honors the dialect's tail-recursive
// semantics just as compiled code does with jump instructions.
package interp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/convert"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// Closure is a function value: a lambda plus its captured lexical
// environment.
type Closure struct {
	Lambda *tree.Lambda
	Env    *Env
}

// Write renders the closure unreadably.
func (c *Closure) Write(b *strings.Builder) {
	name := c.Lambda.Name
	if name == "" {
		name = "anonymous"
	}
	fmt.Fprintf(b, "#<closure %s>", name)
}

// Builtin is a primitive function implemented in Go.
type Builtin struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for variadic
	Fn      func(in *Interp, args []sexp.Value) (sexp.Value, error)
	// Pure marks builtins free of side effects, eligible for compile-time
	// expression evaluation by the optimizer.
	Pure bool
}

// Write renders the builtin unreadably.
func (b *Builtin) Write(sb *strings.Builder) { fmt.Fprintf(sb, "#<builtin %s>", b.Name) }

// Env is a lexical environment: a chain of frames mapping variables to
// mutable cells.
type Env struct {
	parent *Env
	vars   map[*tree.Var]*sexp.Value
}

// NewEnv returns a child of parent.
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: map[*tree.Var]*sexp.Value{}}
}

// Bind creates a fresh cell for v.
func (e *Env) Bind(v *tree.Var, val sexp.Value) { e.vars[v] = &val }

func (e *Env) cell(v *tree.Var) *sexp.Value {
	for c := e; c != nil; c = c.parent {
		if cell, ok := c.vars[v]; ok {
			return cell
		}
	}
	return nil
}

// specBind is one entry of the deep-binding stack.
type specBind struct {
	sym *sexp.Symbol
	val sexp.Value
}

// Stats counts interpreter activity for the benchmarks.
type Stats struct {
	Calls          int64 // closure applications
	BuiltinCalls   int64
	SpecialLookups int64 // deep-binding searches
	Conses         int64
}

// Interp is an interpreter instance.
type Interp struct {
	// Globals holds top-level dynamic value cells.
	Globals map[*sexp.Symbol]sexp.Value
	// Funcs holds global function cells.
	Funcs map[*sexp.Symbol]sexp.Value
	// Out receives print output.
	Out io.Writer
	// Stats accumulates counters.
	Stats Stats

	specials []specBind
}

// New returns an interpreter with the standard primitives installed.
func New() *Interp {
	in := &Interp{
		Globals: map[*sexp.Symbol]sexp.Value{},
		Funcs:   map[*sexp.Symbol]sexp.Value{},
		Out:     io.Discard,
	}
	installBuiltins(in)
	return in
}

// control-flow signals, passed as errors.

type goSignal struct {
	target *tree.ProgBody
	tag    *sexp.Symbol
}

func (g *goSignal) Error() string { return "interp: go " + g.tag.Name + " escaped" }

type returnSignal struct {
	target *tree.ProgBody
	val    sexp.Value
}

func (r *returnSignal) Error() string { return "interp: return escaped" }

type throwSignal struct {
	tag sexp.Value
	val sexp.Value
}

func (t *throwSignal) Error() string {
	return "interp: uncaught throw to " + sexp.Print(t.tag)
}

// LispError is a user-visible evaluation error.
type LispError struct{ Msg string }

func (e *LispError) Error() string { return "interp: " + e.Msg }

func lerrf(format string, args ...any) error {
	return &LispError{Msg: fmt.Sprintf(format, args...)}
}

// LoadProgram installs a converted program's definitions and runs its
// top-level forms, returning the value of the last one.
func (in *Interp) LoadProgram(p *convert.Program) (sexp.Value, error) {
	for _, d := range p.Defs {
		in.Funcs[d.Name] = &Closure{Lambda: d.Lambda}
	}
	var out sexp.Value = sexp.Nil
	for _, f := range p.TopForms {
		v, err := in.Eval(f, nil)
		if err != nil {
			return nil, err
		}
		out = v
	}
	return out, nil
}

// DefineFunction installs fn (a *Closure or *Builtin) under name.
func (in *Interp) DefineFunction(name *sexp.Symbol, fn sexp.Value) {
	in.Funcs[name] = fn
}

// CallNamed applies the named global function to args.
func (in *Interp) CallNamed(name *sexp.Symbol, args ...sexp.Value) (sexp.Value, error) {
	fn, ok := in.Funcs[name]
	if !ok {
		return nil, lerrf("undefined function %s", name.Name)
	}
	return in.Apply(fn, args)
}

// specialLookup finds the current dynamic binding cell index for sym, or
// -1 to use the global cell.
func (in *Interp) specialLookup(sym *sexp.Symbol) int {
	in.Stats.SpecialLookups++
	for i := len(in.specials) - 1; i >= 0; i-- {
		if in.specials[i].sym == sym {
			return i
		}
	}
	return -1
}

func (in *Interp) specialValue(sym *sexp.Symbol) (sexp.Value, error) {
	if i := in.specialLookup(sym); i >= 0 {
		return in.specials[i].val, nil
	}
	if v, ok := in.Globals[sym]; ok {
		return v, nil
	}
	return nil, lerrf("unbound variable %s", sym.Name)
}

func (in *Interp) setSpecial(sym *sexp.Symbol, val sexp.Value) {
	if i := in.specialLookup(sym); i >= 0 {
		in.specials[i].val = val
		return
	}
	in.Globals[sym] = val
}

// Eval evaluates node n in lexical environment env (nil for top level).
func (in *Interp) Eval(n tree.Node, env *Env) (sexp.Value, error) {
	return in.evalSub(n, env)
}

// evalSub evaluates a non-tail subexpression: any dynamic bindings pushed
// by closures tail-looped into during its evaluation are unwound when it
// returns, which is exactly the end of those binding constructs' dynamic
// extent.
func (in *Interp) evalSub(n tree.Node, env *Env) (sexp.Value, error) {
	specBase := len(in.specials)
	v, err := in.eval(n, env)
	in.specials = in.specials[:specBase]
	return v, err
}

// eval is the tail-looping core. Dynamic bindings pushed when control
// "becomes" a closure body are unwound by the caller (Eval or apply).
func (in *Interp) eval(n tree.Node, env *Env) (sexp.Value, error) {
	for {
		switch x := n.(type) {
		case *tree.Literal:
			return x.Value, nil

		case *tree.VarRef:
			if x.Var.Special {
				return in.specialValue(x.Var.Name)
			}
			cell := env.cell(x.Var)
			if cell == nil {
				return nil, lerrf("unbound lexical variable %s (compiler bug?)", x.Var)
			}
			return *cell, nil

		case *tree.Setq:
			v, err := in.evalSub(x.Value, env)
			if err != nil {
				return nil, err
			}
			if x.Var.Special {
				in.setSpecial(x.Var.Name, v)
				return v, nil
			}
			cell := env.cell(x.Var)
			if cell == nil {
				return nil, lerrf("setq of unbound lexical variable %s", x.Var)
			}
			*cell = v
			return v, nil

		case *tree.If:
			t, err := in.evalSub(x.Test, env)
			if err != nil {
				return nil, err
			}
			if sexp.Truthy(t) {
				n = x.Then
			} else {
				n = x.Else
			}
			continue // tail position

		case *tree.Progn:
			if len(x.Forms) == 0 {
				return sexp.Nil, nil
			}
			for _, f := range x.Forms[:len(x.Forms)-1] {
				if _, err := in.evalSub(f, env); err != nil {
					return nil, err
				}
			}
			n = x.Forms[len(x.Forms)-1]
			continue

		case *tree.Lambda:
			return &Closure{Lambda: x, Env: env}, nil

		case *tree.FunRef:
			fn, ok := in.Funcs[x.Name]
			if !ok {
				return nil, lerrf("undefined function %s", x.Name.Name)
			}
			return fn, nil

		case *tree.Call:
			fn, err := in.evalSub(x.Fn, env)
			if err != nil {
				return nil, err
			}
			args := make([]sexp.Value, len(x.Args))
			for i, a := range x.Args {
				if args[i], err = in.evalSub(a, env); err != nil {
					return nil, err
				}
			}
			switch f := fn.(type) {
			case *Closure:
				// Tail-loop into the closure body rather than recursing.
				in.Stats.Calls++
				newEnv, err := in.bindParams(f, args)
				if err != nil {
					return nil, err
				}
				env = newEnv
				n = f.Lambda.Body
				continue
			case *Builtin:
				return in.callBuiltin(f, args)
			default:
				return nil, lerrf("not a function: %s", sexp.Print(fn))
			}

		case *tree.ProgBody:
			if v, done, err := in.evalProgBody(x, env); done || err != nil {
				return v, err
			}
			return sexp.Nil, nil

		case *tree.Go:
			return nil, &goSignal{target: x.Target, tag: x.Tag}

		case *tree.Return:
			v, err := in.evalSub(x.Value, env)
			if err != nil {
				return nil, err
			}
			return nil, &returnSignal{target: x.Target, val: v}

		case *tree.Catcher:
			tag, err := in.evalSub(x.Tag, env)
			if err != nil {
				return nil, err
			}
			v, err := in.evalSub(x.Body, env)
			if ts, ok := err.(*throwSignal); ok && sexp.Eql(ts.tag, tag) {
				return ts.val, nil
			}
			return v, err

		case *tree.Caseq:
			key, err := in.evalSub(x.Key, env)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, cl := range x.Clauses {
				for _, k := range cl.Keys {
					if sexp.Eql(key, k) {
						n = cl.Body
						matched = true
						break
					}
				}
				if matched {
					break
				}
			}
			if matched {
				continue
			}
			if x.Default != nil {
				n = x.Default
				continue
			}
			return sexp.Nil, nil

		default:
			return nil, lerrf("cannot evaluate %T", n)
		}
	}
}

// evalProgBody runs the statement list with go/return handling; done
// reports a return (with its value).
func (in *Interp) evalProgBody(pb *tree.ProgBody, env *Env) (sexp.Value, bool, error) {
	i := 0
	steps := 0
	for i < len(pb.Forms) {
		_, err := in.evalSub(pb.Forms[i], env)
		if err != nil {
			switch sig := err.(type) {
			case *goSignal:
				if sig.target == pb {
					i = pb.TagIndex(sig.tag)
					if i < 0 {
						return nil, false, lerrf("go to missing tag %s", sig.tag.Name)
					}
					steps++
					if steps > 1<<30 {
						return nil, false, lerrf("progbody ran for 2^30 jumps; infinite loop?")
					}
					continue
				}
				return nil, false, err
			case *returnSignal:
				if sig.target == pb {
					return sig.val, true, nil
				}
				return nil, false, err
			default:
				return nil, false, err
			}
		}
		i++
	}
	return sexp.Nil, false, nil
}

// Apply applies a function value to arguments (the dialect's apply).
func (in *Interp) Apply(fn sexp.Value, args []sexp.Value) (sexp.Value, error) {
	switch f := fn.(type) {
	case *Closure:
		in.Stats.Calls++
		specBase := len(in.specials)
		env, err := in.bindParams(f, args)
		if err != nil {
			in.specials = in.specials[:specBase]
			return nil, err
		}
		v, err := in.eval(f.Lambda.Body, env)
		in.specials = in.specials[:specBase]
		return v, err
	case *Builtin:
		return in.callBuiltin(f, args)
	}
	return nil, lerrf("not a function: %s", sexp.Print(fn))
}

func (in *Interp) callBuiltin(f *Builtin, args []sexp.Value) (sexp.Value, error) {
	in.Stats.BuiltinCalls++
	if len(args) < f.MinArgs || (f.MaxArgs >= 0 && len(args) > f.MaxArgs) {
		return nil, lerrf("%s: wrong number of arguments (%d)", f.Name, len(args))
	}
	return f.Fn(in, args)
}

// bindParams builds the environment for a closure application, handling
// optionals (with defaults evaluated left to right in the growing
// environment), &rest, and dynamic binding of special parameters.
func (in *Interp) bindParams(f *Closure, args []sexp.Value) (*Env, error) {
	l := f.Lambda
	if len(args) < l.MinArgs() {
		return nil, lerrf("%s: too few arguments (%d for %d)",
			lambdaName(l), len(args), l.MinArgs())
	}
	if l.MaxArgs() >= 0 && len(args) > l.MaxArgs() {
		return nil, lerrf("%s: too many arguments (%d for %d)",
			lambdaName(l), len(args), l.MaxArgs())
	}
	env := NewEnv(f.Env)
	bind := func(v *tree.Var, val sexp.Value) {
		if v.Special {
			in.specials = append(in.specials, specBind{sym: v.Name, val: val})
		} else {
			env.Bind(v, val)
		}
	}
	i := 0
	for _, v := range l.Required {
		bind(v, args[i])
		i++
	}
	for _, o := range l.Optional {
		if i < len(args) {
			bind(o.Var, args[i])
			i++
			continue
		}
		dv, err := in.evalSub(o.Default, env)
		if err != nil {
			return nil, err
		}
		bind(o.Var, dv)
	}
	if l.Rest != nil {
		var rest sexp.Value = sexp.Nil
		for j := len(args) - 1; j >= i; j-- {
			rest = sexp.NewCons(args[j], rest)
			in.Stats.Conses++
		}
		bind(l.Rest, rest)
	}
	return env, nil
}

func lambdaName(l *tree.Lambda) string {
	if l.Name != "" {
		return l.Name
	}
	return "lambda"
}

// EvalSource converts and evaluates a whole source text, returning the
// last top-level value. It is a convenience for tests and examples.
func EvalSource(src string) (sexp.Value, error) {
	forms, err := sexp.ReadAll(src)
	if err != nil {
		return nil, err
	}
	c := convert.New()
	p, err := c.ConvertTopLevel(forms)
	if err != nil {
		return nil, err
	}
	return New().LoadProgram(p)
}
