package interp

import (
	"fmt"
	"math"

	"repro/internal/sexp"
)

// installBuiltins registers the primitive function set. Pure builtins are
// eligible for the optimizer's compile-time expression evaluation.
func installBuiltins(in *Interp) {
	def := func(name string, min, max int, pure bool,
		fn func(in *Interp, args []sexp.Value) (sexp.Value, error)) {
		in.Funcs[sexp.Intern(name)] = &Builtin{
			Name: name, MinArgs: min, MaxArgs: max, Fn: fn, Pure: pure,
		}
	}

	// --- conses and lists ---
	def("cons", 2, 2, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		in.Stats.Conses++
		return sexp.NewCons(a[0], a[1]), nil
	})
	def("car", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return carOf(a[0]) })
	def("cdr", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return cdrOf(a[0]) })
	for _, spec := range []struct{ name, ops string }{
		{"caar", "aa"}, {"cadr", "ad"}, {"cdar", "da"}, {"cddr", "dd"},
		{"caddr", "add"}, {"cdddr", "ddd"},
	} {
		ops := spec.ops
		def(spec.name, 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			v := a[0]
			var err error
			for i := len(ops) - 1; i >= 0; i-- {
				if ops[i] == 'a' {
					v, err = carOf(v)
				} else {
					v, err = cdrOf(v)
				}
				if err != nil {
					return nil, err
				}
			}
			return v, nil
		})
	}
	def("first", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return carOf(a[0]) })
	def("rest", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return cdrOf(a[0]) })
	def("second", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		d, err := cdrOf(a[0])
		if err != nil {
			return nil, err
		}
		return carOf(d)
	})
	def("rplaca", 2, 2, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		c, ok := a[0].(*sexp.Cons)
		if !ok {
			return nil, lerrf("rplaca: not a cons: %s", sexp.Print(a[0]))
		}
		c.Car = a[1]
		return c, nil
	})
	def("rplacd", 2, 2, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		c, ok := a[0].(*sexp.Cons)
		if !ok {
			return nil, lerrf("rplacd: not a cons: %s", sexp.Print(a[0]))
		}
		c.Cdr = a[1]
		return c, nil
	})
	def("list", 0, -1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		in.Stats.Conses += int64(len(a))
		return sexp.List(a...), nil
	})
	def("list*", 1, -1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		out := a[len(a)-1]
		for i := len(a) - 2; i >= 0; i-- {
			in.Stats.Conses++
			out = sexp.NewCons(a[i], out)
		}
		return out, nil
	})
	def("append", 0, -1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		if len(a) == 0 {
			return sexp.Nil, nil
		}
		out := a[len(a)-1]
		for i := len(a) - 2; i >= 0; i-- {
			items, err := sexp.ListToSlice(a[i])
			if err != nil {
				return nil, err
			}
			for j := len(items) - 1; j >= 0; j-- {
				in.Stats.Conses++
				out = sexp.NewCons(items[j], out)
			}
		}
		return out, nil
	})
	def("reverse", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		items, err := sexp.ListToSlice(a[0])
		if err != nil {
			return nil, err
		}
		var out sexp.Value = sexp.Nil
		for _, it := range items {
			in.Stats.Conses++
			out = sexp.NewCons(it, out)
		}
		return out, nil
	})
	def("length", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		if n := sexp.Length(a[0]); n >= 0 {
			return sexp.Fixnum(n), nil
		}
		if s, ok := a[0].(sexp.String); ok {
			return sexp.Fixnum(len(s)), nil
		}
		if v, ok := a[0].(*sexp.Vector); ok {
			return sexp.Fixnum(len(v.Items)), nil
		}
		return nil, lerrf("length: improper list")
	})
	def("nth", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		n, err := sexp.ToInt64(a[0])
		if err != nil {
			return nil, err
		}
		v := a[1]
		for ; n > 0; n-- {
			if v, err = cdrOf(v); err != nil {
				return nil, err
			}
		}
		return carOf(v)
	})
	def("nthcdr", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		n, err := sexp.ToInt64(a[0])
		if err != nil {
			return nil, err
		}
		v := a[1]
		for ; n > 0; n-- {
			if v, err = cdrOf(v); err != nil {
				return nil, err
			}
		}
		return v, nil
	})
	def("last", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		v := a[0]
		for {
			c, ok := v.(*sexp.Cons)
			if !ok {
				return v, nil
			}
			if _, ok := c.Cdr.(*sexp.Cons); !ok {
				return c, nil
			}
			v = c.Cdr
		}
	})
	def("assq", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return assocBy(a[0], a[1], sexp.Eq)
	})
	def("assoc", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return assocBy(a[0], a[1], sexp.Equal)
	})
	def("memq", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return memberBy(a[0], a[1], sexp.Eq)
	})
	def("member", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return memberBy(a[0], a[1], sexp.Equal)
	})

	// --- predicates ---
	def("atom", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(*sexp.Cons)
		return !ok
	}))
	def("consp", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(*sexp.Cons)
		return ok
	}))
	def("listp", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(*sexp.Cons)
		return ok || sexp.IsNil(v)
	}))
	def("null", 1, 1, true, pred(sexp.IsNil))
	def("not", 1, 1, true, pred(sexp.IsNil))
	def("symbolp", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(*sexp.Symbol)
		return ok
	}))
	def("numberp", 1, 1, true, pred(sexp.IsNumber))
	def("integerp", 1, 1, true, pred(sexp.IsInteger))
	def("floatp", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(sexp.Flonum)
		return ok
	}))
	def("stringp", 1, 1, true, pred(func(v sexp.Value) bool {
		_, ok := v.(sexp.String)
		return ok
	}))
	def("functionp", 1, 1, true, pred(func(v sexp.Value) bool {
		switch v.(type) {
		case *Closure, *Builtin:
			return true
		}
		return false
	}))
	def("eq", 2, 2, true, pred2(sexp.Eq))
	def("eql", 2, 2, true, pred2(sexp.Eql))
	def("equal", 2, 2, true, pred2(sexp.Equal))
	def("zerop", 1, 1, true, predErr(sexp.Zerop))
	def("plusp", 1, 1, true, predErr(sexp.Plusp))
	def("minusp", 1, 1, true, predErr(sexp.Minusp))
	def("oddp", 1, 1, true, predErr(sexp.Oddp))
	def("evenp", 1, 1, true, predErr(sexp.Evenp))

	// --- generic arithmetic ---
	def("+", 0, -1, true, fold(sexp.Fixnum(0), sexp.Add))
	def("*", 0, -1, true, fold(sexp.Fixnum(1), sexp.Mul))
	def("-", 1, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		if len(a) == 1 {
			return sexp.Neg(a[0])
		}
		out := a[0]
		var err error
		for _, v := range a[1:] {
			if out, err = sexp.Sub(out, v); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	def("/", 1, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		if len(a) == 1 {
			return sexp.Div(sexp.Fixnum(1), a[0])
		}
		out := a[0]
		var err error
		for _, v := range a[1:] {
			if out, err = sexp.Div(out, v); err != nil {
				return nil, err
			}
		}
		return out, nil
	})
	def("1+", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return sexp.Add(a[0], sexp.Fixnum(1))
	})
	def("1-", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return sexp.Sub(a[0], sexp.Fixnum(1))
	})
	def("min", 1, -1, true, fold1(sexp.Min))
	def("max", 1, -1, true, fold1(sexp.Max))
	def("abs", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return sexp.Abs(a[0]) })
	def("mod", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return sexp.Mod(a[0], a[1]) })
	def("rem", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) { return sexp.Rem(a[0], a[1]) })
	divmode := func(name string, mode sexp.DivMode) {
		def(name, 1, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			if len(a) == 1 {
				q, _, err := sexp.IntDiv(mode, a[0], sexp.Fixnum(1))
				return q, err
			}
			q, _, err := sexp.IntDiv(mode, a[0], a[1])
			return q, err
		})
	}
	divmode("floor", sexp.DivFloor)
	divmode("ceiling", sexp.DivCeiling)
	divmode("truncate", sexp.DivTruncate)
	divmode("round", sexp.DivRound)
	def("expt", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return exptGeneric(a[0], a[1])
	})
	def("gcd", 0, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		out := int64(0)
		for _, v := range a {
			n, err := sexp.ToInt64(v)
			if err != nil {
				return nil, err
			}
			out = gcd64(out, n)
		}
		return sexp.Fixnum(out), nil
	})

	cmpChain := func(name string, ok func(c int) bool) {
		def(name, 1, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			for i := 0; i+1 < len(a); i++ {
				c, err := sexp.Compare(a[i], a[i+1])
				if err != nil {
					return nil, err
				}
				if !ok(c) {
					return sexp.Nil, nil
				}
			}
			return sexp.T, nil
		})
	}
	cmpChain("=", func(c int) bool { return c == 0 })
	cmpChain("<", func(c int) bool { return c < 0 })
	cmpChain(">", func(c int) bool { return c > 0 })
	cmpChain("<=", func(c int) bool { return c <= 0 })
	cmpChain(">=", func(c int) bool { return c >= 0 })
	def("/=", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		c, err := sexp.Compare(a[0], a[1])
		if err != nil {
			return nil, err
		}
		return sexp.Bool(c != 0), nil
	})

	// --- transcendental (generic) ---
	mathFn := func(name string, f func(float64) float64) {
		def(name, 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, err := sexp.ToFloat(a[0])
			if err != nil {
				return nil, err
			}
			return sexp.Flonum(f(x)), nil
		})
	}
	mathFn("sqrt", math.Sqrt)
	mathFn("sin", math.Sin)
	mathFn("cos", math.Cos)
	mathFn("tan", math.Tan)
	mathFn("exp", math.Exp)
	mathFn("log", math.Log)
	def("atan", 1, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		x, err := sexp.ToFloat(a[0])
		if err != nil {
			return nil, err
		}
		if len(a) == 2 {
			y, err := sexp.ToFloat(a[1])
			if err != nil {
				return nil, err
			}
			return sexp.Flonum(math.Atan2(x, y)), nil
		}
		return sexp.Flonum(math.Atan(x)), nil
	})

	// --- type-specific float operators (§6.2: "+$f" indicates
	// single-precision floating-point addition) ---
	flo2 := func(name string, f func(x, y float64) float64) {
		def(name, 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, y, err := twoFloats(name, a)
			if err != nil {
				return nil, err
			}
			return sexp.Flonum(f(x, y)), nil
		})
	}
	flo2("+$f", func(x, y float64) float64 { return x + y })
	flo2("-$f", func(x, y float64) float64 { return x - y })
	flo2("*$f", func(x, y float64) float64 { return x * y })
	flo2("/$f", func(x, y float64) float64 { return x / y })
	flo2("max$f", math.Max)
	flo2("min$f", math.Min)
	floCmp := func(name string, ok func(x, y float64) bool) {
		def(name, 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, y, err := twoFloats(name, a)
			if err != nil {
				return nil, err
			}
			return sexp.Bool(ok(x, y)), nil
		})
	}
	floCmp("=$f", func(x, y float64) bool { return x == y })
	floCmp("<$f", func(x, y float64) bool { return x < y })
	floCmp(">$f", func(x, y float64) bool { return x > y })
	floCmp("<=$f", func(x, y float64) bool { return x <= y })
	floCmp(">=$f", func(x, y float64) bool { return x >= y })
	flo1 := func(name string, f func(float64) float64) {
		def(name, 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, err := oneFloat(name, a[0])
			if err != nil {
				return nil, err
			}
			return sexp.Flonum(f(x)), nil
		})
	}
	flo1("neg$f", func(x float64) float64 { return -x })
	flo1("abs$f", math.Abs)
	flo1("sqrt$f", math.Sqrt)
	flo1("sin$f", math.Sin)
	flo1("cos$f", math.Cos)
	flo1("atan$f", math.Atan)
	flo1("exp$f", math.Exp)
	flo1("log$f", math.Log)
	// sinc$f/cosc$f take their argument in cycles: the S-1 SIN instruction
	// "assumes its argument to be in cycles" (§7).
	flo1("sinc$f", func(x float64) float64 { return math.Sin(2 * math.Pi * x) })
	flo1("cosc$f", func(x float64) float64 { return math.Cos(2 * math.Pi * x) })
	def("float", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return sexp.Float(a[0])
	})
	def("fix", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		q, _, err := sexp.IntDiv(sexp.DivTruncate, a[0], sexp.Fixnum(1))
		if err != nil {
			return nil, err
		}
		if f, ok := q.(sexp.Flonum); ok {
			return sexp.Fixnum(int64(f)), nil
		}
		return q, nil
	})

	// --- type-specific fixnum operators ("+&" indicates addition of
	// machine integers) ---
	fix2 := func(name string, f func(x, y int64) int64) {
		def(name, 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, y, err := twoFixnums(name, a)
			if err != nil {
				return nil, err
			}
			return sexp.Fixnum(f(x, y)), nil
		})
	}
	fix2("+&", func(x, y int64) int64 { return x + y })
	fix2("-&", func(x, y int64) int64 { return x - y })
	fix2("*&", func(x, y int64) int64 { return x * y })
	def("/&", 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		x, y, err := twoFixnums("/&", a)
		if err != nil {
			return nil, err
		}
		if y == 0 {
			return nil, lerrf("/&: division by zero")
		}
		return sexp.Fixnum(x / y), nil
	})
	fixCmp := func(name string, ok func(x, y int64) bool) {
		def(name, 2, 2, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
			x, y, err := twoFixnums(name, a)
			if err != nil {
				return nil, err
			}
			return sexp.Bool(ok(x, y)), nil
		})
	}
	fixCmp("=&", func(x, y int64) bool { return x == y })
	fixCmp("<&", func(x, y int64) bool { return x < y })
	fixCmp(">&", func(x, y int64) bool { return x > y })
	fixCmp("<=&", func(x, y int64) bool { return x <= y })
	fixCmp(">=&", func(x, y int64) bool { return x >= y })
	def("1+&", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		x, err := oneFixnum("1+&", a[0])
		return sexp.Fixnum(x + 1), err
	})
	def("1-&", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		x, err := oneFixnum("1-&", a[0])
		return sexp.Fixnum(x - 1), err
	})

	// --- arrays ---
	def("make-array", 1, 2, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		dims, err := dimsOf(a[0])
		if err != nil {
			return nil, err
		}
		initial := sexp.Value(sexp.Nil)
		if len(a) == 2 {
			initial = a[1]
		}
		return sexp.NewArray(dims, initial), nil
	})
	def("make-float-array", 1, 1, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		dims, err := dimsOf(a[0])
		if err != nil {
			return nil, err
		}
		return sexp.NewFloatArray(dims), nil
	})
	def("aref", 1, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return arefGeneric(a[0], a[1:])
	})
	def("aset", 2, -1, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return asetGeneric(a[0], a[1], a[2:])
	})
	def("aref$f", 1, -1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		fa, ok := a[0].(*sexp.FloatArray)
		if !ok {
			return nil, lerrf("aref$f: not a float array")
		}
		idx, err := subsIndex(fa.Dims, a[1:])
		if err != nil {
			return nil, err
		}
		return sexp.Flonum(fa.Data[idx]), nil
	})
	def("aset$f", 2, -1, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		fa, ok := a[0].(*sexp.FloatArray)
		if !ok {
			return nil, lerrf("aset$f: not a float array")
		}
		x, err := oneFloat("aset$f", a[1])
		if err != nil {
			return nil, err
		}
		idx, err := subsIndex(fa.Dims, a[2:])
		if err != nil {
			return nil, err
		}
		fa.Data[idx] = x
		return a[1], nil
	})
	def("array-dimensions", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		var dims []int
		switch arr := a[0].(type) {
		case *sexp.Array:
			dims = arr.Dims
		case *sexp.FloatArray:
			dims = arr.Dims
		default:
			return nil, lerrf("array-dimensions: not an array")
		}
		out := make([]sexp.Value, len(dims))
		for i, d := range dims {
			out[i] = sexp.Fixnum(d)
		}
		return sexp.List(out...), nil
	})

	// --- control and environment ---
	def("funcall", 1, -1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		return in.Apply(a[0], a[1:])
	})
	def("apply", 2, -1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		spread, err := sexp.ListToSlice(a[len(a)-1])
		if err != nil {
			return nil, lerrf("apply: last argument must be a list")
		}
		args := append(append([]sexp.Value{}, a[1:len(a)-1]...), spread...)
		return in.Apply(a[0], args)
	})
	def("throw", 2, 2, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return nil, &throwSignal{tag: a[0], val: a[1]}
	})
	def("error", 1, -1, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		parts := make([]string, len(a))
		for i, v := range a {
			parts[i] = sexp.Print(v)
		}
		return nil, lerrf("error: %s", fmt.Sprint(parts))
	})
	def("identity", 1, 1, true, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return a[0], nil
	})
	def("symbol-value", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		sym, ok := a[0].(*sexp.Symbol)
		if !ok {
			return nil, lerrf("symbol-value: not a symbol")
		}
		return in.specialValue(sym)
	})
	def("set", 2, 2, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		sym, ok := a[0].(*sexp.Symbol)
		if !ok {
			return nil, lerrf("set: not a symbol")
		}
		in.setSpecial(sym, a[1])
		return a[1], nil
	})
	def("boundp", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		sym, ok := a[0].(*sexp.Symbol)
		if !ok {
			return nil, lerrf("boundp: not a symbol")
		}
		if i := in.specialLookup(sym); i >= 0 {
			return sexp.T, nil
		}
		_, ok = in.Globals[sym]
		return sexp.Bool(ok), nil
	})
	def("gensym", 0, 1, false, func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		prefix := "g"
		if len(a) == 1 {
			if s, ok := a[0].(sexp.String); ok {
				prefix = string(s)
			}
		}
		return sexp.Gensym(prefix), nil
	})

	// --- output ---
	def("print", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		fmt.Fprintf(in.Out, "\n%s ", sexp.Print(a[0]))
		return a[0], nil
	})
	def("prin1", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		fmt.Fprint(in.Out, sexp.Print(a[0]))
		return a[0], nil
	})
	def("princ", 1, 1, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		if s, ok := a[0].(sexp.String); ok {
			fmt.Fprint(in.Out, string(s))
		} else {
			fmt.Fprint(in.Out, sexp.Print(a[0]))
		}
		return a[0], nil
	})
	def("terpri", 0, 0, false, func(in *Interp, a []sexp.Value) (sexp.Value, error) {
		fmt.Fprintln(in.Out)
		return sexp.Nil, nil
	})
}

// --- helpers ---

func carOf(v sexp.Value) (sexp.Value, error) {
	if sexp.IsNil(v) {
		return sexp.Nil, nil // (car nil) = nil, MACLISP convention
	}
	c, ok := v.(*sexp.Cons)
	if !ok {
		return nil, lerrf("car: not a list: %s", sexp.Print(v))
	}
	return c.Car, nil
}

func cdrOf(v sexp.Value) (sexp.Value, error) {
	if sexp.IsNil(v) {
		return sexp.Nil, nil
	}
	c, ok := v.(*sexp.Cons)
	if !ok {
		return nil, lerrf("cdr: not a list: %s", sexp.Print(v))
	}
	return c.Cdr, nil
}

func pred(f func(sexp.Value) bool) func(*Interp, []sexp.Value) (sexp.Value, error) {
	return func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return sexp.Bool(f(a[0])), nil
	}
}

func pred2(f func(a, b sexp.Value) bool) func(*Interp, []sexp.Value) (sexp.Value, error) {
	return func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		return sexp.Bool(f(a[0], a[1])), nil
	}
}

func predErr(f func(sexp.Value) (bool, error)) func(*Interp, []sexp.Value) (sexp.Value, error) {
	return func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		b, err := f(a[0])
		if err != nil {
			return nil, err
		}
		return sexp.Bool(b), nil
	}
}

func fold(zero sexp.Value, f func(a, b sexp.Value) (sexp.Value, error)) func(*Interp, []sexp.Value) (sexp.Value, error) {
	return func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		out := zero
		if len(a) > 0 {
			out = a[0]
			a = a[1:]
		}
		var err error
		for _, v := range a {
			if out, err = f(out, v); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
}

func fold1(f func(a, b sexp.Value) (sexp.Value, error)) func(*Interp, []sexp.Value) (sexp.Value, error) {
	return func(_ *Interp, a []sexp.Value) (sexp.Value, error) {
		out := a[0]
		var err error
		for _, v := range a[1:] {
			if out, err = f(out, v); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
}

func twoFloats(name string, a []sexp.Value) (float64, float64, error) {
	x, err := oneFloat(name, a[0])
	if err != nil {
		return 0, 0, err
	}
	y, err := oneFloat(name, a[1])
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

func oneFloat(name string, v sexp.Value) (float64, error) {
	f, ok := v.(sexp.Flonum)
	if !ok {
		return 0, lerrf("%s: not a flonum: %s", name, sexp.Print(v))
	}
	return float64(f), nil
}

func twoFixnums(name string, a []sexp.Value) (int64, int64, error) {
	x, err := oneFixnum(name, a[0])
	if err != nil {
		return 0, 0, err
	}
	y, err := oneFixnum(name, a[1])
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

func oneFixnum(name string, v sexp.Value) (int64, error) {
	f, ok := v.(sexp.Fixnum)
	if !ok {
		return 0, lerrf("%s: not a fixnum: %s", name, sexp.Print(v))
	}
	return int64(f), nil
}

func assocBy(key, alist sexp.Value, eq func(a, b sexp.Value) bool) (sexp.Value, error) {
	for !sexp.IsNil(alist) {
		c, ok := alist.(*sexp.Cons)
		if !ok {
			return nil, lerrf("assoc: improper alist")
		}
		if pair, ok := c.Car.(*sexp.Cons); ok && eq(pair.Car, key) {
			return pair, nil
		}
		alist = c.Cdr
	}
	return sexp.Nil, nil
}

func memberBy(key, list sexp.Value, eq func(a, b sexp.Value) bool) (sexp.Value, error) {
	for !sexp.IsNil(list) {
		c, ok := list.(*sexp.Cons)
		if !ok {
			return nil, lerrf("member: improper list")
		}
		if eq(c.Car, key) {
			return c, nil
		}
		list = c.Cdr
	}
	return sexp.Nil, nil
}

func dimsOf(v sexp.Value) ([]int, error) {
	if n, err := sexp.ToInt64(v); err == nil {
		return []int{int(n)}, nil
	}
	items, err := sexp.ListToSlice(v)
	if err != nil {
		return nil, lerrf("make-array: bad dimensions %s", sexp.Print(v))
	}
	dims := make([]int, len(items))
	for i, it := range items {
		n, err := sexp.ToInt64(it)
		if err != nil {
			return nil, err
		}
		dims[i] = int(n)
	}
	return dims, nil
}

func subsIndex(dims []int, subs []sexp.Value) (int, error) {
	is := make([]int, len(subs))
	for i, s := range subs {
		n, err := sexp.ToInt64(s)
		if err != nil {
			return 0, err
		}
		is[i] = int(n)
	}
	return sexp.RowMajorIndex(dims, is)
}

func arefGeneric(arr sexp.Value, subs []sexp.Value) (sexp.Value, error) {
	switch a := arr.(type) {
	case *sexp.Array:
		idx, err := subsIndex(a.Dims, subs)
		if err != nil {
			return nil, err
		}
		return a.Items[idx], nil
	case *sexp.FloatArray:
		idx, err := subsIndex(a.Dims, subs)
		if err != nil {
			return nil, err
		}
		return sexp.Flonum(a.Data[idx]), nil
	case *sexp.Vector:
		idx, err := subsIndex([]int{len(a.Items)}, subs)
		if err != nil {
			return nil, err
		}
		return a.Items[idx], nil
	}
	return nil, lerrf("aref: not an array: %s", sexp.Print(arr))
}

func asetGeneric(arr, val sexp.Value, subs []sexp.Value) (sexp.Value, error) {
	switch a := arr.(type) {
	case *sexp.Array:
		idx, err := subsIndex(a.Dims, subs)
		if err != nil {
			return nil, err
		}
		a.Items[idx] = val
		return val, nil
	case *sexp.FloatArray:
		idx, err := subsIndex(a.Dims, subs)
		if err != nil {
			return nil, err
		}
		f, err := sexp.ToFloat(val)
		if err != nil {
			return nil, err
		}
		a.Data[idx] = f
		return val, nil
	case *sexp.Vector:
		idx, err := subsIndex([]int{len(a.Items)}, subs)
		if err != nil {
			return nil, err
		}
		a.Items[idx] = val
		return val, nil
	}
	return nil, lerrf("aset: not an array: %s", sexp.Print(arr))
}

func exptGeneric(base, power sexp.Value) (sexp.Value, error) {
	if n, err := sexp.ToInt64(power); err == nil {
		if n < 0 {
			inv, err := exptGeneric(base, sexp.Fixnum(-n))
			if err != nil {
				return nil, err
			}
			return sexp.Div(sexp.Fixnum(1), inv)
		}
		out := sexp.Value(sexp.Fixnum(1))
		acc := base
		for n > 0 {
			var err error
			if n&1 == 1 {
				if out, err = sexp.Mul(out, acc); err != nil {
					return nil, err
				}
			}
			if acc, err = sexp.Mul(acc, acc); err != nil {
				return nil, err
			}
			n >>= 1
		}
		return out, nil
	}
	b, err := sexp.ToFloat(base)
	if err != nil {
		return nil, err
	}
	p, err := sexp.ToFloat(power)
	if err != nil {
		return nil, err
	}
	return sexp.Flonum(math.Pow(b, p)), nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
