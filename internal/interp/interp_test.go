package interp

import (
	"strings"
	"testing"

	"repro/internal/convert"
	"repro/internal/sexp"
)

// ev evaluates a whole source and returns the printed last value.
func ev(t *testing.T, src string) string {
	t.Helper()
	v, err := EvalSource(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return sexp.Print(v)
}

func evErr(t *testing.T, src string) error {
	t.Helper()
	_, err := EvalSource(src)
	if err == nil {
		t.Fatalf("eval %q should fail", src)
	}
	return err
}

func TestSelfEvaluating(t *testing.T) {
	cases := [][2]string{
		{"42", "42"}, {"3.5", "3.5"}, {`"hi"`, `"hi"`},
		{"t", "t"}, {"nil", "nil"}, {"'foo", "foo"}, {"'(1 2)", "(1 2)"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestArithmetic(t *testing.T) {
	cases := [][2]string{
		{"(+ 1 2 3)", "6"},
		{"(+)", "0"},
		{"(* 2 3 4)", "24"},
		{"(- 10 1 2)", "7"},
		{"(- 5)", "-5"},
		{"(/ 1 3)", "1/3"},
		{"(/ 2.0)", "0.5"},
		{"(1+ 5)", "6"},
		{"(min 3 1 2)", "1"},
		{"(max 3 1 4.5)", "4.5"},
		{"(abs -3)", "3"},
		{"(floor 7 2)", "3"},
		{"(floor -7 2)", "-4"},
		{"(ceiling 7 2)", "4"},
		{"(truncate -7 2)", "-3"},
		{"(round 7 2)", "4"},
		{"(mod -7 3)", "2"},
		{"(rem -7 3)", "-1"},
		{"(expt 2 10)", "1024"},
		{"(expt 2 -2)", "1/4"},
		{"(expt 2.0 0.5)", "1.4142135623730951"},
		{"(gcd 12 18)", "6"},
		{"(< 1 2 3)", "t"},
		{"(< 1 3 2)", "nil"},
		{"(= 2 2.0)", "t"},
		{"(/= 1 2)", "t"},
		{"(sqrt 4.0)", "2.0"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestTypeSpecificOps(t *testing.T) {
	cases := [][2]string{
		{"(+$f 1.5 2.5)", "4.0"},
		{"(*$f 3.0 2.0)", "6.0"},
		{"(max$f 1.0 2.0)", "2.0"},
		{"(sqrt$f 9.0)", "3.0"},
		{"(<$f 1.0 2.0)", "t"},
		{"(+& 2 3)", "5"},
		{"(*& 4 5)", "20"},
		{"(1+& 1)", "2"},
		{"(<& 1 2)", "t"},
		{"(float 3)", "3.0"},
		{"(fix 3.7)", "3"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
	// Type-specific operators reject wrong representations.
	evErr(t, "(+$f 1 2)")
	evErr(t, "(+& 1.0 2.0)")
	evErr(t, "(/& 1 0)")
}

func TestSincIsCycleSine(t *testing.T) {
	// sinc$f(x/2pi) == sin$f(x): the §7 transformation's correctness
	// condition.
	got := ev(t, "(sinc$f (*$f 0.15915494309189535 2.0))")
	want := ev(t, "(sin$f 2.0)")
	if got != want {
		t.Errorf("sinc$f identity: %s vs %s", got, want)
	}
}

func TestListOps(t *testing.T) {
	cases := [][2]string{
		{"(cons 1 2)", "(1 . 2)"},
		{"(car '(1 2))", "1"},
		{"(cdr '(1 2))", "(2)"},
		{"(car nil)", "nil"},
		{"(cadr '(1 2 3))", "2"},
		{"(caddr '(1 2 3))", "3"},
		{"(list 1 2 3)", "(1 2 3)"},
		{"(list* 1 2 '(3))", "(1 2 3)"},
		{"(append '(1) '(2 3) '(4))", "(1 2 3 4)"},
		{"(reverse '(1 2 3))", "(3 2 1)"},
		{"(length '(a b c))", "3"},
		{"(nth 1 '(a b c))", "b"},
		{"(nthcdr 2 '(a b c))", "(c)"},
		{"(last '(a b c))", "(c)"},
		{"(assq 'b '((a 1) (b 2)))", "(b 2)"},
		{"(memq 'b '(a b c))", "(b c)"},
		{"(member '(1) '((0) (1)))", "((1))"},
		{"(rplaca (cons 1 2) 9)", "(9 . 2)"},
		{"(rplacd (cons 1 2) 9)", "(1 . 9)"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestPredicates(t *testing.T) {
	cases := [][2]string{
		{"(atom 1)", "t"}, {"(atom '(1))", "nil"},
		{"(consp '(1))", "t"}, {"(consp nil)", "nil"},
		{"(listp nil)", "t"}, {"(listp '(1))", "t"}, {"(listp 1)", "nil"},
		{"(null nil)", "t"}, {"(not 3)", "nil"},
		{"(symbolp 'a)", "t"}, {"(symbolp 1)", "nil"},
		{"(numberp 1/2)", "t"}, {"(integerp 3)", "t"}, {"(integerp 3.0)", "nil"},
		{"(floatp 3.0)", "t"}, {"(stringp \"s\")", "t"},
		{"(functionp #'car)", "t"}, {"(functionp 3)", "nil"},
		{"(eq 'a 'a)", "t"},
		{"(eql 3 3)", "t"}, {"(eql 3 3.0)", "nil"},
		{"(equal '(1 2) '(1 2))", "t"},
		{"(zerop 0)", "t"}, {"(oddp 3)", "t"}, {"(evenp 3)", "nil"},
		{"(plusp 1/2)", "t"}, {"(minusp -1)", "t"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestLexicalScoping(t *testing.T) {
	cases := [][2]string{
		{"(let ((x 1)) x)", "1"},
		{"(let ((x 1)) (let ((x 2)) x))", "2"},
		{"(let ((x 1)) (let ((x 2)) nil) x)", "1"},
		{"(let* ((x 1) (y (+ x 1))) y)", "2"},
		{"((lambda (x y) (+ x y)) 3 4)", "7"},
		{"(let ((x 1)) (setq x 5) x)", "5"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestClosuresCapture(t *testing.T) {
	// Returning a function closes over its environment — the reason
	// "sometimes environment structures must be heap-allocated".
	src := `
(defun make-adder (n) (lambda (x) (+ x n)))
(defun compose (f g) (lambda (x) (funcall f (funcall g x))))
(funcall (compose (make-adder 1) (make-adder 10)) 100)`
	if got := ev(t, src); got != "111" {
		t.Errorf("closure composition = %s", got)
	}
	// Shared mutable capture.
	src2 := `
(defun make-counter ()
  (let ((n 0))
    (lambda () (setq n (+ n 1)) n)))
(let ((c (make-counter)))
  (funcall c) (funcall c) (funcall c))`
	if got := ev(t, src2); got != "3" {
		t.Errorf("counter = %s", got)
	}
}

func TestOptionalDefaults(t *testing.T) {
	// The paper's testfn parameter behavior (§7).
	src := `
(defun tf (a &optional (b 3.0) (c a)) (list a b c))
(list (tf 1.0) (tf 1.0 2.0) (tf 1.0 2.0 5.0))`
	want := "((1.0 3.0 1.0) (1.0 2.0 1.0) (1.0 2.0 5.0))"
	if got := ev(t, src); got != want {
		t.Errorf("optionals = %s, want %s", got, want)
	}
}

func TestRestParameter(t *testing.T) {
	src := `(defun f (a &rest r) (cons a r)) (f 1 2 3)`
	if got := ev(t, src); got != "(1 2 3)" {
		t.Errorf("rest = %s", got)
	}
	if got := ev(t, `(defun g (&rest r) r) (g)`); got != "nil" {
		t.Errorf("empty rest = %s", got)
	}
}

func TestArgCountChecking(t *testing.T) {
	evErr(t, "(defun f (a b) a) (f 1)")
	evErr(t, "(defun f (a) a) (f 1 2)")
	evErr(t, "(car 1 2)")
}

func TestExptlTailRecursionConstantStack(t *testing.T) {
	// §2: "it cannot produce stack overflow no matter how large n is".
	// Interpreted via the tail loop; a million iterations would overflow
	// Go's stack if calls recursed.
	src := `
(defun iter (i acc) (if (zerop i) acc (iter (- i 1) (+ acc 1))))
(iter 1000000 0)`
	if got := ev(t, src); got != "1000000" {
		t.Errorf("iter = %s", got)
	}
}

func TestExptl(t *testing.T) {
	// The paper's §2 example: compute a*x^n by repeated squaring.
	src := `
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))
(exptl 2 62 1)`
	if got := ev(t, src); got != "4611686018427387904" {
		t.Errorf("exptl = %s", got)
	}
}

func TestQuadratic(t *testing.T) {
	src := `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))
(list (quadratic 1.0 -3.0 2.0) (quadratic 1.0 2.0 1.0) (quadratic 1.0 0.0 1.0))`
	want := "((2.0 1.0) (-1.0) nil)"
	if got := ev(t, src); got != want {
		t.Errorf("quadratic = %s, want %s", got, want)
	}
}

func TestSpecialVariablesDeepBinding(t *testing.T) {
	// A routine refers to variables bound by its caller.
	src := `
(proclaim '(special depth))
(defun probe () depth)
(defun outer (depth) (probe))
(outer 42)`
	if got := ev(t, src); got != "42" {
		t.Errorf("dynamic scope = %s", got)
	}
	// Bindings unwind.
	src2 := `
(defvar *d* 0)
(defun probe () *d*)
(defun with (x) (let ((*d* x)) (probe)))
(list (with 1) (probe))`
	if got := ev(t, src2); got != "(1 0)" {
		t.Errorf("unwind = %s", got)
	}
}

func TestSpecialSetqAffectsCurrentBinding(t *testing.T) {
	src := `
(defvar *v* 1)
(defun bump () (setq *v* (+ *v* 10)) *v*)
(let ((*v* 100)) (bump))`
	if got := ev(t, src); got != "110" {
		t.Errorf("setq of bound special = %s", got)
	}
	// Outer value untouched.
	src2 := src + " *v*"
	if got := ev(t, src2); got != "1" {
		t.Errorf("outer special = %s", got)
	}
}

func TestUnboundVariable(t *testing.T) {
	err := evErr(t, "completely-unbound-xyz")
	if !strings.Contains(err.Error(), "unbound") {
		t.Errorf("error = %v", err)
	}
}

func TestProgGoReturn(t *testing.T) {
	src := `
(prog (i acc)
  (setq i 0 acc 1)
 loop
  (if (>= i 5) (return acc) nil)
  (setq acc (* acc 2))
  (setq i (+ i 1))
  (go loop))`
	if got := ev(t, src); got != "32" {
		t.Errorf("prog loop = %s", got)
	}
	// Falling off the end yields nil.
	if got := ev(t, "(prog () 1 2)"); got != "nil" {
		t.Errorf("prog fallthrough = %s", got)
	}
}

func TestDoLoops(t *testing.T) {
	cases := [][2]string{
		{"(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))", "10"},
		{"(do* ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))", "15"},
		{"(dotimes (i 4 i) nil)", "4"},
		{"(let ((s 0)) (dotimes (i 5) (setq s (+ s i))) s)", "10"},
		{"(let ((s nil)) (dolist (x '(1 2 3) s) (setq s (cons x s))))", "(3 2 1)"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestCatchThrow(t *testing.T) {
	cases := [][2]string{
		{"(catch 'done (throw 'done 42) 1)", "42"},
		{"(catch 'done 1 2)", "2"},
		{"(catch 'a (catch 'b (throw 'a 7)))", "7"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
	err := evErr(t, "(throw 'nobody 1)")
	if !strings.Contains(err.Error(), "uncaught") {
		t.Errorf("uncaught throw error = %v", err)
	}
}

func TestCaseq(t *testing.T) {
	src := `(defun kind (k) (caseq k ((1 2 3) 'small) (10 'ten) (t 'big)))
	        (list (kind 2) (kind 10) (kind 99))`
	if got := ev(t, src); got != "(small ten big)" {
		t.Errorf("caseq = %s", got)
	}
	if got := ev(t, "(caseq 9 (1 'a))"); got != "nil" {
		t.Errorf("caseq no default = %s", got)
	}
}

func TestArrays(t *testing.T) {
	cases := [][2]string{
		{"(let ((a (make-array 3 0))) (aset a 7 1) (aref a 1))", "7"},
		{"(let ((a (make-array '(2 2) 0))) (aset a 5 1 1) (aref a 1 1))", "5"},
		{"(let ((a (make-float-array '(2 2)))) (aset$f a 1.5 0 1) (aref$f a 0 1))", "1.5"},
		{"(array-dimensions (make-array '(2 3) nil))", "(2 3)"},
		{"(let ((a (make-float-array 4))) (aref a 0))", "0.0"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
	evErr(t, "(aref (make-array 2 0) 5)")
	evErr(t, "(aref (make-array '(2 2) 0) 1)")
}

func TestApplyAndFuncall(t *testing.T) {
	cases := [][2]string{
		{"(apply #'+ '(1 2 3))", "6"},
		{"(apply #'+ 1 2 '(3 4))", "10"},
		{"(funcall #'cons 1 2)", "(1 . 2)"},
		{"(funcall (lambda (x) (* x x)) 5)", "25"},
	}
	for _, c := range cases {
		if got := ev(t, c[0]); got != c[1] {
			t.Errorf("%s = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestSymbolValueSetBoundp(t *testing.T) {
	src := `(set 'g1 10) (list (symbol-value 'g1) (boundp 'g1) (boundp 'g2))`
	if got := ev(t, src); got != "(10 t nil)" {
		t.Errorf("symbol-value = %s", got)
	}
}

func TestOutput(t *testing.T) {
	forms, err := sexp.ReadAll(`(princ "hello") (terpri) (prin1 '(1 2))`)
	if err != nil {
		t.Fatal(err)
	}
	c := convert.New()
	p, err := c.ConvertTopLevel(forms)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	var buf strings.Builder
	in.Out = &buf
	if _, err := in.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "hello\n(1 2)" {
		t.Errorf("output = %q", buf.String())
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
(defun my-even (n) (if (zerop n) t (my-odd (- n 1))))
(defun my-odd (n) (if (zerop n) nil (my-even (- n 1))))
(list (my-even 10) (my-odd 7))`
	if got := ev(t, src); got != "(t t)" {
		t.Errorf("mutual recursion = %s", got)
	}
}

func TestFib(t *testing.T) {
	src := `
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(fib 15)`
	if got := ev(t, src); got != "610" {
		t.Errorf("fib = %s", got)
	}
}

func TestStatsCounters(t *testing.T) {
	forms, _ := sexp.ReadAll("(defun f (x) (cons x nil)) (f 1) (f 2)")
	c := convert.New()
	p, _ := c.ConvertTopLevel(forms)
	in := New()
	if _, err := in.LoadProgram(p); err != nil {
		t.Fatal(err)
	}
	if in.Stats.Calls < 2 {
		t.Errorf("calls = %d", in.Stats.Calls)
	}
	if in.Stats.Conses < 2 {
		t.Errorf("conses = %d", in.Stats.Conses)
	}
}

func TestCallNamedAndDefine(t *testing.T) {
	in := New()
	v, err := in.CallNamed(sexp.Intern("+"), sexp.Fixnum(1), sexp.Fixnum(2))
	if err != nil || sexp.Print(v) != "3" {
		t.Fatalf("CallNamed: %v %v", v, err)
	}
	if _, err := in.CallNamed(sexp.Intern("no-such-fn")); err == nil {
		t.Error("undefined function should error")
	}
}

func TestGoAcrossLambdaFails(t *testing.T) {
	// go targets must be lexically visible; converter rejects this.
	_, err := EvalSource("(prog () (go missing))")
	if err == nil {
		t.Error("go to missing tag should fail at conversion")
	}
}

func TestBuiltinPrintsUnreadably(t *testing.T) {
	if got := ev(t, "#'car"); !strings.Contains(got, "#<builtin car>") {
		t.Errorf("builtin prints %s", got)
	}
	if got := ev(t, "(lambda (x) x)"); !strings.Contains(got, "#<closure") {
		t.Errorf("closure prints %s", got)
	}
}
