// Package tree implements the compiler's internal program representation:
// an expression-oriented tree over the small construct set of Table 2 of
// the paper (literal, variable, caseq, catcher, go, if, lambda, progbody,
// progn, return, setq, call), decorated by successive phases and always
// back-translatable into valid source.
//
// There is no central symbol table: every distinct variable is a *Var
// carrying back-pointers to its binder and to every reference, exactly as
// §4.1 describes.
package tree

import (
	"fmt"

	"repro/internal/sexp"
)

// Kind discriminates node types.
type Kind int

// The internal construct set (Table 2).
const (
	KindLiteral  Kind = iota // constants (quote)
	KindVarRef               // variable reference
	KindCaseq                // case statement
	KindCatcher              // target for non-local exits (catch)
	KindGo                   // goto a progbody tag
	KindIf                   // if-then-else
	KindLambda               // lambda-expression (value = lexical closure)
	KindProgBody             // tagged statements; go/return operate on it
	KindProgn                // sequential execution (begin-end)
	KindReturn               // exit a surrounding progbody
	KindSetq                 // assignment
	KindCall                 // function invocation
	KindFunRef               // reference to a global/primitive function cell
)

var kindNames = map[Kind]string{
	KindLiteral: "literal", KindVarRef: "variable", KindCaseq: "caseq",
	KindCatcher: "catcher", KindGo: "go", KindIf: "if", KindLambda: "lambda",
	KindProgBody: "progbody", KindProgn: "progn", KindReturn: "return",
	KindSetq: "setq", KindCall: "call", KindFunRef: "funref",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Node is a node of the internal tree. Each node carries an Info block of
// per-phase annotation slots ("each node of the tree has extra data slots;
// these are filled in by successive phases of the compiler").
type Node interface {
	Info() *Info
	Kind() Kind
}

// Info holds the per-node annotation slots shared by all node kinds.
type Info struct {
	// Parent is the enclosing node; recomputed by ComputeParents after
	// tree surgery.
	Parent Node

	// Environment analysis (§4.2): variables read and written within the
	// subtree.
	Reads, Writes VarSet

	// Side-effects analysis: effects the subtree may produce, and effects
	// by which its value may be adversely affected.
	Effects, Sensitive Effect

	// Complexity analysis: preliminary object-code size estimate, used by
	// the optimizer's substitution heuristics.
	Complexity int

	// Tail-recursion analysis: true when the node is in tail position of
	// its enclosing lambda (its value is the lambda's value).
	Tail bool

	// Representation analysis (§6.2).
	WantRep, IsRep Rep

	// Pdl-number annotation (§6.3). PdlOkP, if non-nil, points to the node
	// that authorized production of a pdl (stack-allocated) number, which
	// bounds the required lifetime; PdlNumP reports the node itself might
	// produce one.
	PdlOkP  Node
	PdlNumP bool

	// Dirty supports the incremental re-analysis flag system of §4.2: the
	// optimizer marks nodes it rewrites, and analysis passes may confine
	// re-decoration to dirty regions.
	Dirty bool
}

// Literal is a constant (the quote construct). All constants are
// explicitly quoted internally for uniformity.
type Literal struct {
	NodeInfo Info
	Value    sexp.Value
}

// VarRef is a reference to a variable.
type VarRef struct {
	NodeInfo Info
	Var      *Var
}

// Setq assigns Value to Var.
type Setq struct {
	NodeInfo Info
	Var      *Var
	Value    Node
}

// If is the two-armed conditional; cond expands into nested Ifs because
// "if is simpler and symmetric, making program transformations easier".
type If struct {
	NodeInfo         Info
	Test, Then, Else Node
}

// Progn is sequential execution; its value is the last form's value.
type Progn struct {
	NodeInfo Info
	Forms    []Node
}

// Call is function invocation. The paper's three cases of interest are all
// Call nodes: calling a manifest lambda-expression (let), calling a known
// primitive (FunRef to a primitive, compiled in line), and calling a user
// or system function (FunRef or a variable holding a function).
type Call struct {
	NodeInfo Info
	Fn       Node
	Args     []Node
}

// FunRef is a reference to a global function cell (user-defined or
// primitive). In function position it denotes a direct call; in value
// position it is the (function f) construct.
type FunRef struct {
	NodeInfo Info
	Name     *sexp.Symbol
}

// OptParam is an &optional parameter with its default-value computation,
// which "may perform any computation, and may refer to other parameters
// occurring earlier in the same formal parameter set".
type OptParam struct {
	Var     *Var
	Default Node
}

// BindStrategy records the binding-annotation decision for a lambda
// (§4.4): how the lambda-expression is to be compiled.
type BindStrategy int

// Lambda compilation strategies, in decreasing order of knowledge about
// call sites.
const (
	// StrategyUnknown: binding annotation has not run.
	StrategyUnknown BindStrategy = iota
	// StrategyOpen: a manifest ((lambda ...) args) call whose body is
	// compiled in line (a let); no function object, no linkage at all.
	StrategyOpen
	// StrategyJump: all calls are visible and tail-recursive; calls
	// compile to parameter-passing gotos.
	StrategyJump
	// StrategyFastCall: all calls are visible but not all tail-recursive;
	// a special fast subroutine linkage without argument-count checks.
	StrategyFastCall
	// StrategyFullClosure: the lambda escapes; a closure object holding
	// the lexical environment must be constructed at run time.
	StrategyFullClosure
)

func (s BindStrategy) String() string {
	switch s {
	case StrategyOpen:
		return "OPEN"
	case StrategyJump:
		return "JUMP"
	case StrategyFastCall:
		return "FASTCALL"
	case StrategyFullClosure:
		return "FULL-CLOSURE"
	}
	return "UNKNOWN"
}

// Lambda is a lambda-expression; its value is a function (a lexical
// closure).
type Lambda struct {
	NodeInfo Info
	Name     string // defun name or a debugging label; "" if anonymous
	Required []*Var
	Optional []OptParam
	Rest     *Var
	Body     Node

	// Binding annotation results (§4.4).
	Strategy BindStrategy
	// HeapVars are the variables of this lambda that must live in a
	// heap-allocated environment because inner closures refer to them.
	HeapVars []*Var
	// SelfVar, when the lambda is bound to a variable all of whose call
	// sites are known, links back to that variable (used for the
	// jump/fast-call strategies).
	SelfVar *Var
}

// Params returns all parameter variables in order: required, optional,
// then rest.
func (l *Lambda) Params() []*Var {
	out := make([]*Var, 0, len(l.Required)+len(l.Optional)+1)
	out = append(out, l.Required...)
	for _, o := range l.Optional {
		out = append(out, o.Var)
	}
	if l.Rest != nil {
		out = append(out, l.Rest)
	}
	return out
}

// MinArgs and MaxArgs give the accepted argument-count range; MaxArgs is
// -1 for &rest lambdas.
func (l *Lambda) MinArgs() int { return len(l.Required) }

// MaxArgs returns the maximum argument count, or -1 when a &rest
// parameter accepts unboundedly many.
func (l *Lambda) MaxArgs() int {
	if l.Rest != nil {
		return -1
	}
	return len(l.Required) + len(l.Optional)
}

// ProgTag is a tag within a progbody: a label before the form at Index.
type ProgTag struct {
	Name  *sexp.Symbol
	Index int // position in Forms the tag precedes (may equal len(Forms))
}

// ProgBody contains tagged statements; go jumps to a tag and return exits
// the construct. The usual prog translates into a let containing a
// progbody.
type ProgBody struct {
	NodeInfo Info
	Forms    []Node
	Tags     []ProgTag
}

// TagIndex returns the form index for tag name, or -1.
func (p *ProgBody) TagIndex(name *sexp.Symbol) int {
	for _, t := range p.Tags {
		if t.Name == name {
			return t.Index
		}
	}
	return -1
}

// Go transfers control to a tag of an enclosing progbody.
type Go struct {
	NodeInfo Info
	Tag      *sexp.Symbol
	Target   *ProgBody
}

// Return exits the enclosing progbody with Value.
type Return struct {
	NodeInfo Info
	Value    Node
	Target   *ProgBody
}

// Catcher is the target for non-local exits (the catch construct).
type Catcher struct {
	NodeInfo Info
	Tag      Node
	Body     Node
}

// CaseClause is one arm of a caseq.
type CaseClause struct {
	Keys []sexp.Value
	Body Node
}

// Caseq dispatches on the (eql-compared) value of Key.
type Caseq struct {
	NodeInfo Info
	Key      Node
	Clauses  []CaseClause
	Default  Node // nil means the default yields nil
}

// Info/Kind implementations.

func (n *Literal) Info() *Info  { return &n.NodeInfo }
func (n *Literal) Kind() Kind   { return KindLiteral }
func (n *VarRef) Info() *Info   { return &n.NodeInfo }
func (n *VarRef) Kind() Kind    { return KindVarRef }
func (n *Setq) Info() *Info     { return &n.NodeInfo }
func (n *Setq) Kind() Kind      { return KindSetq }
func (n *If) Info() *Info       { return &n.NodeInfo }
func (n *If) Kind() Kind        { return KindIf }
func (n *Progn) Info() *Info    { return &n.NodeInfo }
func (n *Progn) Kind() Kind     { return KindProgn }
func (n *Call) Info() *Info     { return &n.NodeInfo }
func (n *Call) Kind() Kind      { return KindCall }
func (n *FunRef) Info() *Info   { return &n.NodeInfo }
func (n *FunRef) Kind() Kind    { return KindFunRef }
func (n *Lambda) Info() *Info   { return &n.NodeInfo }
func (n *Lambda) Kind() Kind    { return KindLambda }
func (n *ProgBody) Info() *Info { return &n.NodeInfo }
func (n *ProgBody) Kind() Kind  { return KindProgBody }
func (n *Go) Info() *Info       { return &n.NodeInfo }
func (n *Go) Kind() Kind        { return KindGo }
func (n *Return) Info() *Info   { return &n.NodeInfo }
func (n *Return) Kind() Kind    { return KindReturn }
func (n *Catcher) Info() *Info  { return &n.NodeInfo }
func (n *Catcher) Kind() Kind   { return KindCatcher }
func (n *Caseq) Info() *Info    { return &n.NodeInfo }
func (n *Caseq) Kind() Kind     { return KindCaseq }

// NewLiteral returns a literal node for v.
func NewLiteral(v sexp.Value) *Literal { return &Literal{Value: v} }

// NewRef creates a reference to v and registers it on v's back-pointer
// list.
func NewRef(v *Var) *VarRef {
	r := &VarRef{Var: v}
	v.Refs = append(v.Refs, r)
	return r
}

// NewSetq creates an assignment to v and registers it on v.
func NewSetq(v *Var, value Node) *Setq {
	s := &Setq{Var: v, Value: value}
	v.Sets = append(v.Sets, s)
	return s
}

// NilLiteral returns a fresh literal nil node.
func NilLiteral() *Literal { return NewLiteral(sexp.Nil) }
