package tree

import "fmt"

// Children returns the direct child nodes of n in evaluation order.
// Lambda's children include the optional-parameter default expressions
// followed by the body.
func Children(n Node) []Node {
	switch x := n.(type) {
	case *Literal, *VarRef, *FunRef, *Go:
		return nil
	case *Setq:
		return []Node{x.Value}
	case *If:
		return []Node{x.Test, x.Then, x.Else}
	case *Progn:
		return append([]Node(nil), x.Forms...)
	case *Call:
		out := make([]Node, 0, len(x.Args)+1)
		out = append(out, x.Fn)
		out = append(out, x.Args...)
		return out
	case *Lambda:
		out := make([]Node, 0, len(x.Optional)+1)
		for _, o := range x.Optional {
			out = append(out, o.Default)
		}
		out = append(out, x.Body)
		return out
	case *ProgBody:
		return append([]Node(nil), x.Forms...)
	case *Return:
		return []Node{x.Value}
	case *Catcher:
		return []Node{x.Tag, x.Body}
	case *Caseq:
		out := []Node{x.Key}
		for _, c := range x.Clauses {
			out = append(out, c.Body)
		}
		if x.Default != nil {
			out = append(out, x.Default)
		}
		return out
	}
	panic(fmt.Sprintf("tree: Children: unknown node %T", n))
}

// ReplaceChild substitutes newc for oldc among parent's direct children.
// It panics if oldc is not a child of parent; VarRef back-pointers are the
// caller's responsibility.
func ReplaceChild(parent Node, oldc, newc Node) {
	switch x := parent.(type) {
	case *Setq:
		if x.Value == oldc {
			x.Value = newc
			return
		}
	case *If:
		switch oldc {
		case x.Test:
			x.Test = newc
			return
		case x.Then:
			x.Then = newc
			return
		case x.Else:
			x.Else = newc
			return
		}
	case *Progn:
		for i, f := range x.Forms {
			if f == oldc {
				x.Forms[i] = newc
				return
			}
		}
	case *Call:
		if x.Fn == oldc {
			x.Fn = newc
			return
		}
		for i, a := range x.Args {
			if a == oldc {
				x.Args[i] = newc
				return
			}
		}
	case *Lambda:
		if x.Body == oldc {
			x.Body = newc
			return
		}
		for i := range x.Optional {
			if x.Optional[i].Default == oldc {
				x.Optional[i].Default = newc
				return
			}
		}
	case *ProgBody:
		for i, f := range x.Forms {
			if f == oldc {
				x.Forms[i] = newc
				return
			}
		}
	case *Return:
		if x.Value == oldc {
			x.Value = newc
			return
		}
	case *Catcher:
		if x.Tag == oldc {
			x.Tag = newc
			return
		}
		if x.Body == oldc {
			x.Body = newc
			return
		}
	case *Caseq:
		if x.Key == oldc {
			x.Key = newc
			return
		}
		for i := range x.Clauses {
			if x.Clauses[i].Body == oldc {
				x.Clauses[i].Body = newc
				return
			}
		}
		if x.Default == oldc {
			x.Default = newc
			return
		}
	}
	panic(fmt.Sprintf("tree: ReplaceChild: %T is not a child of %T", oldc, parent))
}

// Walk calls f on n and every descendant, preorder. If f returns false the
// subtree below the node is skipped.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	for _, c := range Children(n) {
		Walk(c, f)
	}
}

// PostWalk calls f on every node, children first.
func PostWalk(n Node, f func(Node)) {
	if n == nil {
		return
	}
	for _, c := range Children(n) {
		PostWalk(c, f)
	}
	f(n)
}

// ComputeParents (re)establishes parent links below root. root's own
// parent is set to nil. Call after any tree surgery; maintaining links
// incrementally through transformations proved error-prone, so the
// compiler recomputes them per optimizer round.
func ComputeParents(root Node) {
	root.Info().Parent = nil
	var rec func(n Node)
	rec = func(n Node) {
		for _, c := range Children(n) {
			c.Info().Parent = n
			rec(c)
		}
	}
	rec(root)
}

// EnclosingLambda returns the nearest lambda at or above n (following
// parent links), or nil.
func EnclosingLambda(n Node) *Lambda {
	for m := n; m != nil; m = m.Info().Parent {
		if l, ok := m.(*Lambda); ok {
			return l
		}
	}
	return nil
}

// CountNodes returns the number of nodes in the subtree.
func CountNodes(root Node) int {
	n := 0
	PostWalk(root, func(Node) { n++ })
	return n
}

// Validate checks structural invariants: every VarRef/Setq appears on its
// variable's back-pointer lists, parent links (if computed) are
// consistent, and Go/Return targets are progbodies in scope. It returns a
// descriptive error for the first violation. Tests call this after every
// phase.
func Validate(root Node) error {
	var err error
	fail := func(format string, args ...any) {
		if err == nil {
			err = fmt.Errorf("tree: "+format, args...)
		}
	}
	// Gather progbodies in scope along the walk.
	var walk func(n Node, bodies []*ProgBody)
	walk = func(n Node, bodies []*ProgBody) {
		if err != nil {
			return
		}
		switch x := n.(type) {
		case *VarRef:
			found := false
			for _, r := range x.Var.Refs {
				if r == x {
					found = true
					break
				}
			}
			if !found {
				fail("reference to %s missing from back-pointer list", x.Var)
			}
		case *Setq:
			found := false
			for _, s := range x.Var.Sets {
				if s == x {
					found = true
					break
				}
			}
			if !found {
				fail("assignment to %s missing from back-pointer list", x.Var)
			}
		case *ProgBody:
			bodies = append(bodies, x)
			for _, t := range x.Tags {
				if t.Index < 0 || t.Index > len(x.Forms) {
					fail("tag %s index %d out of range", t.Name.Name, t.Index)
				}
			}
		case *Go:
			ok := false
			for _, b := range bodies {
				if b == x.Target {
					ok = true
					break
				}
			}
			if !ok {
				fail("go %s targets a progbody not in scope", x.Tag.Name)
			} else if x.Target.TagIndex(x.Tag) < 0 {
				fail("go %s: no such tag in target progbody", x.Tag.Name)
			}
		case *Return:
			ok := false
			for _, b := range bodies {
				if b == x.Target {
					ok = true
					break
				}
			}
			if !ok {
				fail("return targets a progbody not in scope")
			}
		}
		for _, c := range Children(n) {
			walk(c, bodies)
		}
	}
	walk(root, nil)
	return err
}
