package tree

import (
	"fmt"

	"repro/internal/sexp"
)

// Copy returns a deep copy of the subtree rooted at n. Variables bound by
// lambdas *inside* the subtree get fresh Var records (preserving the
// uniform-renaming invariant); references to variables bound outside the
// subtree point at the original Vars, with the copies registered on their
// back-pointer lists. Go/Return nodes targeting progbodies inside the
// subtree are retargeted to the copies.
//
// Copy is what makes duplication-based transformations (substituting a
// small expression for several variable occurrences, loop unrolling) safe.
func Copy(n Node) Node {
	c := &copier{
		vars:   map[*Var]*Var{},
		bodies: map[*ProgBody]*ProgBody{},
	}
	out := c.node(n)
	c.fixJumps()
	return out
}

type copier struct {
	vars    map[*Var]*Var
	bodies  map[*ProgBody]*ProgBody
	gos     []*Go
	returns []*Return
}

func (c *copier) mapVar(v *Var) *Var {
	if v == nil {
		return nil
	}
	if nv, ok := c.vars[v]; ok {
		return nv
	}
	return v
}

func (c *copier) freshVar(v *Var) *Var {
	if v == nil {
		return nil
	}
	nv := NewVar(v.Name)
	nv.Special = v.Special
	c.vars[v] = nv
	return nv
}

func (c *copier) node(n Node) Node {
	switch x := n.(type) {
	case *Literal:
		out := NewLiteral(x.Value)
		out.NodeInfo = copyInfo(x.NodeInfo)
		return out
	case *VarRef:
		out := NewRef(c.mapVar(x.Var))
		out.NodeInfo = copyInfo(x.NodeInfo)
		return out
	case *FunRef:
		return &FunRef{NodeInfo: copyInfo(x.NodeInfo), Name: x.Name}
	case *Setq:
		// Copy the value first: the variable may be bound by an enclosing
		// lambda already copied (then it is in c.vars) or be free.
		val := c.node(x.Value)
		out := NewSetq(c.mapVar(x.Var), val)
		out.NodeInfo = copyInfo(x.NodeInfo)
		return out
	case *If:
		return &If{NodeInfo: copyInfo(x.NodeInfo),
			Test: c.node(x.Test), Then: c.node(x.Then), Else: c.node(x.Else)}
	case *Progn:
		out := &Progn{NodeInfo: copyInfo(x.NodeInfo), Forms: make([]Node, len(x.Forms))}
		for i, f := range x.Forms {
			out.Forms[i] = c.node(f)
		}
		return out
	case *Call:
		out := &Call{NodeInfo: copyInfo(x.NodeInfo), Fn: c.node(x.Fn),
			Args: make([]Node, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = c.node(a)
		}
		return out
	case *Lambda:
		out := &Lambda{NodeInfo: copyInfo(x.NodeInfo), Name: x.Name,
			Strategy: x.Strategy}
		out.Required = make([]*Var, len(x.Required))
		for i, v := range x.Required {
			out.Required[i] = c.freshVar(v)
			out.Required[i].Binder = out
		}
		out.Optional = make([]OptParam, len(x.Optional))
		for i, o := range x.Optional {
			nv := c.freshVar(o.Var)
			nv.Binder = out
			// Defaults may refer to earlier parameters; vars map is
			// already populated for them.
			out.Optional[i] = OptParam{Var: nv, Default: c.node(o.Default)}
		}
		if x.Rest != nil {
			out.Rest = c.freshVar(x.Rest)
			out.Rest.Binder = out
		}
		out.Body = c.node(x.Body)
		return out
	case *ProgBody:
		out := &ProgBody{NodeInfo: copyInfo(x.NodeInfo),
			Forms: make([]Node, len(x.Forms)),
			Tags:  append([]ProgTag(nil), x.Tags...)}
		c.bodies[x] = out
		for i, f := range x.Forms {
			out.Forms[i] = c.node(f)
		}
		return out
	case *Go:
		out := &Go{NodeInfo: copyInfo(x.NodeInfo), Tag: x.Tag, Target: x.Target}
		c.gos = append(c.gos, out)
		return out
	case *Return:
		out := &Return{NodeInfo: copyInfo(x.NodeInfo), Value: c.node(x.Value),
			Target: x.Target}
		c.returns = append(c.returns, out)
		return out
	case *Catcher:
		return &Catcher{NodeInfo: copyInfo(x.NodeInfo),
			Tag: c.node(x.Tag), Body: c.node(x.Body)}
	case *Caseq:
		out := &Caseq{NodeInfo: copyInfo(x.NodeInfo), Key: c.node(x.Key)}
		for _, cl := range x.Clauses {
			out.Clauses = append(out.Clauses, CaseClause{
				Keys: append([]sexp.Value(nil), cl.Keys...), Body: c.node(cl.Body)})
		}
		if x.Default != nil {
			out.Default = c.node(x.Default)
		}
		return out
	}
	panic(fmt.Sprintf("tree: Copy: unknown node %T", n))
}

// fixJumps retargets copied go/return nodes whose progbody was inside the
// copied region.
func (c *copier) fixJumps() {
	for _, g := range c.gos {
		if nb, ok := c.bodies[g.Target]; ok {
			g.Target = nb
		}
	}
	for _, r := range c.returns {
		if nb, ok := c.bodies[r.Target]; ok {
			r.Target = nb
		}
	}
}

// copyInfo duplicates the analysis slots but clears the parent link (the
// copy will be relinked) and the VarSets (stale after renaming).
func copyInfo(in Info) Info {
	out := in
	out.Parent = nil
	out.Reads = nil
	out.Writes = nil
	out.Dirty = true
	return out
}

// Detach removes a subtree's variable back-pointers: every VarRef and
// Setq below n is dropped from its Var's lists. Call when the optimizer
// discards a subtree so that reference counts stay accurate.
func Detach(n Node) {
	PostWalk(n, func(m Node) {
		switch x := m.(type) {
		case *VarRef:
			x.Var.DropRef(x)
		case *Setq:
			x.Var.DropSet(x)
		}
	})
}
