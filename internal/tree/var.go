package tree

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sexp"
)

// Var is the little data structure associated with every distinct variable
// ("two variables with the same name may be distinct because of scoping
// rules"). The binder and all references point at it, and it points back.
type Var struct {
	Name *sexp.Symbol
	// ID makes distinct same-named variables distinguishable in debug
	// output.
	ID int64
	// Special marks dynamic scoping (the LISP term is "special").
	Special bool
	// Binder is the lambda that binds this variable, or nil for free
	// (global or special) variables.
	Binder *Lambda
	// Refs and Sets are back-pointers to every reference and assignment.
	Refs []*VarRef
	Sets []*Setq

	// Binding annotation (§4.4): Closed marks variables referred to by
	// inner closures, which therefore require heap allocation.
	Closed bool
}

var varCounter int64

// NewVar creates a fresh variable record.
func NewVar(name *sexp.Symbol) *Var {
	return &Var{Name: name, ID: atomic.AddInt64(&varCounter, 1)}
}

// String renders the variable for diagnostics as name#id.
func (v *Var) String() string {
	if v == nil {
		return "<nil-var>"
	}
	return fmt.Sprintf("%s#%d", v.Name.Name, v.ID)
}

// DropRef removes a reference from the back-pointer list (used when the
// optimizer deletes or replaces a reference node).
func (v *Var) DropRef(r *VarRef) {
	for i, x := range v.Refs {
		if x == r {
			v.Refs = append(v.Refs[:i], v.Refs[i+1:]...)
			return
		}
	}
}

// DropSet removes an assignment back-pointer.
func (v *Var) DropSet(s *Setq) {
	for i, x := range v.Sets {
		if x == s {
			v.Sets = append(v.Sets[:i], v.Sets[i+1:]...)
			return
		}
	}
}

// Assigned reports whether the variable is ever setq'd.
func (v *Var) Assigned() bool { return len(v.Sets) > 0 }

// VarSet is a set of variables.
type VarSet map[*Var]struct{}

// NewVarSet builds a set from vars.
func NewVarSet(vars ...*Var) VarSet {
	s := make(VarSet, len(vars))
	for _, v := range vars {
		s[v] = struct{}{}
	}
	return s
}

// Add inserts v, allocating the set if needed, and returns it.
func (s VarSet) Add(v *Var) VarSet {
	if s == nil {
		s = VarSet{}
	}
	s[v] = struct{}{}
	return s
}

// Has reports membership.
func (s VarSet) Has(v *Var) bool {
	_, ok := s[v]
	return ok
}

// Union merges o into s (allocating if needed) and returns the result.
func (s VarSet) Union(o VarSet) VarSet {
	if len(o) == 0 {
		return s
	}
	if s == nil {
		s = make(VarSet, len(o))
	}
	for v := range o {
		s[v] = struct{}{}
	}
	return s
}

// Without returns a copy of s with the given vars removed.
func (s VarSet) Without(vars ...*Var) VarSet {
	out := make(VarSet, len(s))
	for v := range s {
		out[v] = struct{}{}
	}
	for _, v := range vars {
		delete(out, v)
	}
	return out
}

// Intersects reports whether the sets share an element.
func (s VarSet) Intersects(o VarSet) bool {
	small, large := s, o
	if len(large) < len(small) {
		small, large = large, small
	}
	for v := range small {
		if large.Has(v) {
			return true
		}
	}
	return false
}

// Sorted returns the variables ordered by ID (deterministic output).
func (s VarSet) Sorted() []*Var {
	out := make([]*Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
