package tree

import (
	"fmt"

	"repro/internal/sexp"
)

// BackTranslate converts an internal tree back into source code,
// "equivalent to, though not necessarily identical to, the original
// source" (§4.1). It is the debugging aid used throughout the paper's
// transcripts, and the optimizer's golden tests rely on it.
//
// As in the paper, quote forms around self-evaluating constants (numbers,
// strings, characters, t and nil) are omitted for readability.
func BackTranslate(n Node) sexp.Value {
	return (&backTranslator{}).node(n)
}

// BackTranslateUnique is BackTranslate but renames every variable to
// name#id so that distinct same-named variables are distinguishable.
func BackTranslateUnique(n Node) sexp.Value {
	return (&backTranslator{unique: true}).node(n)
}

// Show renders a node as printed source, the form used in compiler
// transcripts.
func Show(n Node) string { return sexp.Print(BackTranslate(n)) }

type backTranslator struct {
	unique bool
}

func (bt *backTranslator) varName(v *Var) sexp.Value {
	if bt.unique {
		return sexp.Intern(fmt.Sprintf("%s#%d", v.Name.Name, v.ID))
	}
	return v.Name
}

func (bt *backTranslator) node(n Node) sexp.Value {
	switch x := n.(type) {
	case *Literal:
		if selfEvaluating(x.Value) {
			return x.Value
		}
		return sexp.List(sexp.SymQuote, x.Value)
	case *VarRef:
		return bt.varName(x.Var)
	case *FunRef:
		return sexp.List(sexp.SymFunction, x.Name)
	case *Setq:
		return sexp.List(sexp.Intern("setq"), bt.varName(x.Var), bt.node(x.Value))
	case *If:
		return sexp.List(sexp.Intern("if"), bt.node(x.Test), bt.node(x.Then), bt.node(x.Else))
	case *Progn:
		items := []sexp.Value{sexp.Intern("progn")}
		for _, f := range x.Forms {
			items = append(items, bt.node(f))
		}
		return sexp.List(items...)
	case *Call:
		var items []sexp.Value
		switch fn := x.Fn.(type) {
		case *FunRef:
			items = append(items, fn.Name)
		case *VarRef:
			// The paper prints calls through variables directly: (f).
			items = append(items, bt.varName(fn.Var))
		default:
			items = append(items, bt.node(x.Fn))
		}
		for _, a := range x.Args {
			items = append(items, bt.node(a))
		}
		return sexp.List(items...)
	case *Lambda:
		return sexp.List(sexp.SymLambda, bt.lambdaList(x), bt.node(x.Body))
	case *ProgBody:
		items := []sexp.Value{sexp.Intern("progbody")}
		// Interleave tags and forms.
		ti := 0
		for i := 0; i <= len(x.Forms); i++ {
			for ti < len(x.Tags) && x.Tags[ti].Index == i {
				items = append(items, x.Tags[ti].Name)
				ti++
			}
			if i < len(x.Forms) {
				items = append(items, bt.node(x.Forms[i]))
			}
		}
		return sexp.List(items...)
	case *Go:
		return sexp.List(sexp.Intern("go"), x.Tag)
	case *Return:
		return sexp.List(sexp.Intern("return"), bt.node(x.Value))
	case *Catcher:
		return sexp.List(sexp.Intern("catch"), bt.node(x.Tag), bt.node(x.Body))
	case *Caseq:
		items := []sexp.Value{sexp.Intern("caseq"), bt.node(x.Key)}
		for _, c := range x.Clauses {
			keys := make([]sexp.Value, len(c.Keys))
			copy(keys, c.Keys)
			items = append(items, sexp.List(sexp.List(keys...), bt.node(c.Body)))
		}
		if x.Default != nil {
			items = append(items, sexp.List(sexp.T, bt.node(x.Default)))
		}
		return sexp.List(items...)
	}
	panic(fmt.Sprintf("tree: BackTranslate: unknown node %T", n))
}

func (bt *backTranslator) lambdaList(l *Lambda) sexp.Value {
	var items []sexp.Value
	for _, v := range l.Required {
		items = append(items, bt.varName(v))
	}
	if len(l.Optional) > 0 {
		items = append(items, sexp.SymOptional)
		for _, o := range l.Optional {
			items = append(items, sexp.List(bt.varName(o.Var), bt.node(o.Default)))
		}
	}
	if l.Rest != nil {
		items = append(items, sexp.SymRest, bt.varName(l.Rest))
	}
	return sexp.List(items...)
}

func selfEvaluating(v sexp.Value) bool {
	switch v.(type) {
	case sexp.Fixnum, *sexp.Bignum, *sexp.Ratio, sexp.Flonum,
		sexp.String, sexp.Character:
		return true
	}
	return v == sexp.Value(sexp.Nil) || v == sexp.Value(sexp.T)
}
