package tree

import (
	"strings"
	"testing"

	"repro/internal/sexp"
)

// buildLet constructs ((lambda (v) body) init) by hand.
func buildLet(name string, init Node, mkBody func(v *Var) Node) *Call {
	v := NewVar(sexp.Intern(name))
	l := &Lambda{Required: []*Var{v}}
	v.Binder = l
	l.Body = mkBody(v)
	return &Call{Fn: l, Args: []Node{init}}
}

func TestBackTranslateBasics(t *testing.T) {
	// ((lambda (x) (if x x 1)) 42)
	n := buildLet("x", NewLiteral(sexp.Fixnum(42)), func(v *Var) Node {
		return &If{Test: NewRef(v), Then: NewRef(v), Else: NewLiteral(sexp.Fixnum(1))}
	})
	got := Show(n)
	want := "((lambda (x) (if x x 1)) 42)"
	if got != want {
		t.Errorf("Show = %s, want %s", got, want)
	}
}

func TestBackTranslateQuoting(t *testing.T) {
	cases := []struct {
		v    sexp.Value
		want string
	}{
		{sexp.Fixnum(3), "3"},
		{sexp.Flonum(2), "2.0"},
		{sexp.Nil, "nil"},
		{sexp.T, "t"},
		{sexp.String("s"), `"s"`},
		{sexp.Intern("foo"), "'foo"},
		{mustRead("(1 2)"), "'(1 2)"},
	}
	for _, c := range cases {
		if got := Show(NewLiteral(c.v)); got != c.want {
			t.Errorf("literal %s prints %s, want %s", sexp.Print(c.v), got, c.want)
		}
	}
}

func TestBackTranslateLambdaList(t *testing.T) {
	a := NewVar(sexp.Intern("a"))
	b := NewVar(sexp.Intern("b"))
	c := NewVar(sexp.Intern("c"))
	r := NewVar(sexp.Intern("more"))
	l := &Lambda{
		Required: []*Var{a},
		Optional: []OptParam{
			{Var: b, Default: NewLiteral(sexp.Flonum(3))},
			{Var: c, Default: NewRef(a)},
		},
		Rest: r,
	}
	for _, v := range []*Var{a, b, c, r} {
		v.Binder = l
	}
	l.Body = NewRef(a)
	got := Show(l)
	want := "(lambda (a &optional (b 3.0) (c a) &rest more) a)"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestBackTranslateProgBodyGoReturn(t *testing.T) {
	pb := &ProgBody{}
	g := &Go{Tag: sexp.Intern("loop"), Target: pb}
	r := &Return{Value: NewLiteral(sexp.Fixnum(7)), Target: pb}
	pb.Forms = []Node{g, r}
	pb.Tags = []ProgTag{{Name: sexp.Intern("loop"), Index: 0}}
	got := Show(pb)
	want := "(progbody loop (go loop) (return 7))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	if err := Validate(pb); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBackTranslateCaseqCatcher(t *testing.T) {
	k := NewVar(sexp.Intern("k"))
	l := &Lambda{Required: []*Var{k}}
	k.Binder = l
	cq := &Caseq{
		Key: NewRef(k),
		Clauses: []CaseClause{
			{Keys: []sexp.Value{sexp.Fixnum(1), sexp.Fixnum(2)}, Body: NewLiteral(sexp.Intern("small"))},
		},
		Default: NewLiteral(sexp.Intern("big")),
	}
	l.Body = cq
	got := Show(l)
	want := "(lambda (k) (caseq k ((1 2) 'small) (t 'big)))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	cat := &Catcher{Tag: NewLiteral(sexp.Intern("done")), Body: NewLiteral(sexp.Fixnum(1))}
	if got := Show(cat); got != "(catch 'done 1)" {
		t.Errorf("catcher prints %s", got)
	}
}

func TestVarBackPointers(t *testing.T) {
	v := NewVar(sexp.Intern("x"))
	r1 := NewRef(v)
	r2 := NewRef(v)
	s := NewSetq(v, NewLiteral(sexp.Fixnum(1)))
	if len(v.Refs) != 2 || len(v.Sets) != 1 {
		t.Fatalf("backpointers: %d refs %d sets", len(v.Refs), len(v.Sets))
	}
	if !v.Assigned() {
		t.Error("Assigned should be true")
	}
	v.DropRef(r1)
	if len(v.Refs) != 1 || v.Refs[0] != r2 {
		t.Error("DropRef failed")
	}
	v.DropSet(s)
	if v.Assigned() {
		t.Error("DropSet failed")
	}
}

func TestVarSetOps(t *testing.T) {
	a, b, c := NewVar(sexp.Intern("a")), NewVar(sexp.Intern("b")), NewVar(sexp.Intern("c"))
	s := NewVarSet(a, b)
	if !s.Has(a) || s.Has(c) {
		t.Error("membership")
	}
	u := s.Union(NewVarSet(c))
	if !u.Has(c) {
		t.Error("union")
	}
	w := u.Without(a)
	if w.Has(a) || !w.Has(b) {
		t.Error("without")
	}
	if !u.Intersects(NewVarSet(c)) || u.Intersects(NewVarSet()) {
		t.Error("intersects")
	}
	var nilSet VarSet
	if nilSet.Has(a) {
		t.Error("nil set has nothing")
	}
	if got := nilSet.Add(a); !got.Has(a) {
		t.Error("Add on nil set")
	}
	sorted := u.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].ID >= sorted[i].ID {
			t.Error("Sorted not ordered")
		}
	}
}

func TestChildrenAndReplace(t *testing.T) {
	n := buildLet("x", NewLiteral(sexp.Fixnum(1)), func(v *Var) Node {
		return &Progn{Forms: []Node{NewRef(v), NewLiteral(sexp.Fixnum(2))}}
	})
	kids := Children(n)
	if len(kids) != 2 {
		t.Fatalf("call children = %d", len(kids))
	}
	// Replace the argument.
	rep := NewLiteral(sexp.Fixnum(9))
	ReplaceChild(n, n.Args[0], rep)
	if n.Args[0] != Node(rep) {
		t.Error("ReplaceChild on call arg failed")
	}
	// Replace inside progn.
	l := n.Fn.(*Lambda)
	pg := l.Body.(*Progn)
	nn := NewLiteral(sexp.Fixnum(3))
	ReplaceChild(pg, pg.Forms[1], nn)
	if pg.Forms[1] != Node(nn) {
		t.Error("ReplaceChild in progn failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("ReplaceChild of non-child should panic")
		}
	}()
	ReplaceChild(pg, NewLiteral(sexp.Fixnum(0)), nn)
}

func TestComputeParentsAndEnclosingLambda(t *testing.T) {
	n := buildLet("x", NewLiteral(sexp.Fixnum(1)), func(v *Var) Node {
		return &If{Test: NewRef(v), Then: NewRef(v), Else: NilLiteral()}
	})
	ComputeParents(n)
	l := n.Fn.(*Lambda)
	iff := l.Body.(*If)
	if iff.Info().Parent != Node(l) {
		t.Error("if's parent should be lambda")
	}
	if iff.Test.Info().Parent != Node(iff) {
		t.Error("test's parent should be if")
	}
	if EnclosingLambda(iff.Test) != l {
		t.Error("EnclosingLambda")
	}
	if n.Info().Parent != nil {
		t.Error("root parent should be nil")
	}
	if EnclosingLambda(n) != nil {
		t.Error("no enclosing lambda at root")
	}
}

func TestWalkOrders(t *testing.T) {
	n := buildLet("x", NewLiteral(sexp.Fixnum(1)), func(v *Var) Node {
		return NewRef(v)
	})
	var pre, post []Kind
	Walk(n, func(m Node) bool { pre = append(pre, m.Kind()); return true })
	PostWalk(n, func(m Node) { post = append(post, m.Kind()) })
	if pre[0] != KindCall || post[len(post)-1] != KindCall {
		t.Errorf("orders wrong: pre=%v post=%v", pre, post)
	}
	if CountNodes(n) != 4 { // call, lambda, varref, literal
		t.Errorf("CountNodes = %d", CountNodes(n))
	}
	// Pruned walk.
	count := 0
	Walk(n, func(m Node) bool { count++; return false })
	if count != 1 {
		t.Errorf("pruned walk visited %d", count)
	}
}

func TestCopyFreshensBoundVars(t *testing.T) {
	orig := buildLet("x", NewLiteral(sexp.Fixnum(1)), func(v *Var) Node {
		return &Progn{Forms: []Node{NewRef(v), NewSetq(v, NewLiteral(sexp.Fixnum(2)))}}
	})
	cp := Copy(orig).(*Call)
	ol := orig.Fn.(*Lambda)
	cl := cp.Fn.(*Lambda)
	if ol.Required[0] == cl.Required[0] {
		t.Fatal("copy did not freshen bound variable")
	}
	// The copy's references point at the fresh var and are registered.
	cref := cl.Body.(*Progn).Forms[0].(*VarRef)
	if cref.Var != cl.Required[0] {
		t.Error("copied ref points at wrong var")
	}
	if len(cl.Required[0].Refs) != 1 || len(cl.Required[0].Sets) != 1 {
		t.Errorf("fresh var backpointers: %d refs %d sets",
			len(cl.Required[0].Refs), len(cl.Required[0].Sets))
	}
	// Original unchanged.
	if len(ol.Required[0].Refs) != 1 || len(ol.Required[0].Sets) != 1 {
		t.Error("original var backpointers disturbed")
	}
	if err := Validate(cp); err != nil {
		t.Errorf("Validate(copy): %v", err)
	}
}

func TestCopyFreeVarsShared(t *testing.T) {
	free := NewVar(sexp.Intern("g"))
	n := &Progn{Forms: []Node{NewRef(free)}}
	cp := Copy(n).(*Progn)
	if cp.Forms[0].(*VarRef).Var != free {
		t.Error("free var should be shared")
	}
	if len(free.Refs) != 2 {
		t.Errorf("free var should have both refs registered, got %d", len(free.Refs))
	}
}

func TestCopyRetargetsJumps(t *testing.T) {
	pb := &ProgBody{}
	pb.Forms = []Node{&Go{Tag: sexp.Intern("l"), Target: pb}}
	pb.Tags = []ProgTag{{Name: sexp.Intern("l"), Index: 0}}
	cp := Copy(pb).(*ProgBody)
	if cp.Forms[0].(*Go).Target != cp {
		t.Error("go inside copied progbody must retarget")
	}
	// A go targeting an *outer* progbody keeps its target.
	outer := &ProgBody{}
	inner := &Progn{Forms: []Node{&Go{Tag: sexp.Intern("x"), Target: outer}}}
	cpi := Copy(inner).(*Progn)
	if cpi.Forms[0].(*Go).Target != outer {
		t.Error("go to outer progbody should keep target")
	}
}

func TestDetach(t *testing.T) {
	v := NewVar(sexp.Intern("x"))
	n := &Progn{Forms: []Node{NewRef(v), NewSetq(v, NewLiteral(sexp.Fixnum(1)))}}
	Detach(n)
	if len(v.Refs) != 0 || len(v.Sets) != 0 {
		t.Error("Detach should clear backpointers")
	}
}

func TestValidateCatchesBrokenBackPointer(t *testing.T) {
	v := NewVar(sexp.Intern("x"))
	bad := &VarRef{Var: v} // not registered
	n := &Progn{Forms: []Node{bad}}
	if err := Validate(n); err == nil {
		t.Error("Validate should reject unregistered reference")
	}
	v2 := NewVar(sexp.Intern("y"))
	bads := &Setq{Var: v2, Value: NilLiteral()}
	if err := Validate(&Progn{Forms: []Node{bads}}); err == nil {
		t.Error("Validate should reject unregistered setq")
	}
}

func TestValidateCatchesOutOfScopeGo(t *testing.T) {
	other := &ProgBody{Tags: []ProgTag{{Name: sexp.Intern("l"), Index: 0}}}
	g := &Go{Tag: sexp.Intern("l"), Target: other}
	if err := Validate(&Progn{Forms: []Node{g}}); err == nil {
		t.Error("Validate should reject go to out-of-scope progbody")
	}
	pb := &ProgBody{Forms: []Node{&Go{Tag: sexp.Intern("missing"), Target: nil}}}
	pb.Forms[0].(*Go).Target = pb
	if err := Validate(pb); err == nil {
		t.Error("Validate should reject go to missing tag")
	}
}

func TestRepProperties(t *testing.T) {
	raws := []Rep{RepSWFIX, RepSWFLO, RepBIT, RepDWFLO, RepSWCPLX}
	for _, r := range raws {
		if !r.Raw() {
			t.Errorf("%v should be raw", r)
		}
	}
	for _, r := range []Rep{RepPOINTER, RepJUMP, RepNONE, RepUnknown} {
		if r.Raw() {
			t.Errorf("%v should not be raw", r)
		}
	}
	// The pdl-eligible set: floats and complexes but not fixnums (fixnums
	// are immediate in pointer world).
	if !RepSWFLO.Numeric() || RepSWFIX.Numeric() || RepPOINTER.Numeric() {
		t.Error("Numeric classification wrong")
	}
	if RepSWFLO.String() != "SWFLO" || RepPOINTER.String() != "POINTER" {
		t.Error("Rep names")
	}
}

func TestEffectLattice(t *testing.T) {
	if !EffNone.Pure() || EffAlloc.Pure() {
		t.Error("Pure")
	}
	if !EffAlloc.PureExceptAlloc() || (EffAlloc | EffWrite).PureExceptAlloc() {
		t.Error("PureExceptAlloc")
	}
	if EffRead.Observable() || !EffWrite.Observable() || !EffCall.Observable() {
		t.Error("Observable")
	}
	s := (EffAlloc | EffControl).String()
	if !strings.Contains(s, "alloc") || !strings.Contains(s, "control") {
		t.Errorf("Effect string = %q", s)
	}
	if EffNone.String() != "pure" {
		t.Error("EffNone string")
	}
}

func TestLambdaArity(t *testing.T) {
	a, b := NewVar(sexp.Intern("a")), NewVar(sexp.Intern("b"))
	l := &Lambda{Required: []*Var{a}, Optional: []OptParam{{Var: b, Default: NilLiteral()}}}
	if l.MinArgs() != 1 || l.MaxArgs() != 2 {
		t.Errorf("arity = %d..%d", l.MinArgs(), l.MaxArgs())
	}
	l.Rest = NewVar(sexp.Intern("r"))
	if l.MaxArgs() != -1 {
		t.Error("rest lambda max arity should be -1")
	}
	ps := l.Params()
	if len(ps) != 3 || ps[0] != a || ps[1] != b {
		t.Error("Params order")
	}
}

func TestKindStrings(t *testing.T) {
	if KindLambda.String() != "lambda" || KindProgBody.String() != "progbody" {
		t.Error("kind names")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still print")
	}
	if StrategyFullClosure.String() != "FULL-CLOSURE" || StrategyUnknown.String() != "UNKNOWN" {
		t.Error("strategy names")
	}
}

func TestBackTranslateUnique(t *testing.T) {
	n := buildLet("x", NewLiteral(sexp.Fixnum(1)), func(v *Var) Node {
		return NewRef(v)
	})
	s := sexp.Print(BackTranslateUnique(n))
	if !strings.Contains(s, "x#") {
		t.Errorf("unique back-translation should tag vars: %s", s)
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
