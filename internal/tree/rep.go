package tree

// Rep is an internal object representation (Table 3 of the paper). The
// representation analysis of §6.2 annotates every node with a desired
// representation (WANTREP, top-down) and a deliverable representation
// (ISREP, bottom-up); code generation inserts coercions where they differ.
type Rep int

// The representation set of Table 3. Our simulated machine has 64-bit
// words, so the single-word representations are the active ones; the
// double/half/two-word and complex entries are retained for fidelity to
// the table and map onto single words (see DESIGN.md §2).
const (
	RepUnknown Rep = iota
	RepSWFIX       // 36-bit integer (one machine word)
	RepDWFIX       // 72-bit integer
	RepHWFLO       // 18-bit floating-point number
	RepSWFLO       // 36-bit floating-point number (one machine word)
	RepDWFLO       // 72-bit floating-point number
	RepTWFLO       // 144-bit floating-point number
	RepHWCPLX      // 36-bit complex floating-point number
	RepSWCPLX      // 72-bit complex floating-point number
	RepDWCPLX      // 144-bit complex floating-point number
	RepTWCPLX      // 288-bit complex floating-point number
	RepPOINTER     // LISP pointer
	RepBIT         // 1-bit integer
	RepJUMP        // conditional jump
	RepNONE        // don't care (value not used)
)

var repNames = map[Rep]string{
	RepUnknown: "UNKNOWN", RepSWFIX: "SWFIX", RepDWFIX: "DWFIX",
	RepHWFLO: "HWFLO", RepSWFLO: "SWFLO", RepDWFLO: "DWFLO",
	RepTWFLO: "TWFLO", RepHWCPLX: "HWCPLX", RepSWCPLX: "SWCPLX",
	RepDWCPLX: "DWCPLX", RepTWCPLX: "TWCPLX", RepPOINTER: "POINTER",
	RepBIT: "BIT", RepJUMP: "JUMP", RepNONE: "NONE",
}

func (r Rep) String() string {
	if s, ok := repNames[r]; ok {
		return s
	}
	return "Rep?"
}

// Raw reports whether r is a "raw machine number" representation (as
// opposed to the pointer world).
func (r Rep) Raw() bool {
	switch r {
	case RepSWFIX, RepDWFIX, RepHWFLO, RepSWFLO, RepDWFLO, RepTWFLO,
		RepHWCPLX, RepSWCPLX, RepDWCPLX, RepTWCPLX, RepBIT:
		return true
	}
	return false
}

// Numeric reports whether r is one of the numeric raw representations that
// have corresponding heap-allocated pointer forms — the pdl-number
// eligible set of §6.3.
func (r Rep) Numeric() bool {
	switch r {
	case RepSWFLO, RepDWFLO, RepTWFLO, RepHWCPLX, RepSWCPLX, RepDWCPLX, RepTWCPLX:
		return true
	}
	return false
}

// Effect is a classification of the side effects a subtree may produce or
// be sensitive to (§4.2 side-effects analysis). It is a bit set.
type Effect uint8

// Effect bits.
const (
	// EffAlloc: heap allocation — "a side effect that may be eliminated
	// but must not be duplicated".
	EffAlloc Effect = 1 << iota
	// EffWrite: writes observable state (setq of a shared/special/global
	// variable, rplaca/rplacd, array store, I/O).
	EffWrite
	// EffRead: reads mutable state, so the value is sensitive to writes.
	EffRead
	// EffControl: may transfer control non-locally (go, return, throw) or
	// signal an error.
	EffControl
	// EffCall: calls an unknown function, which may do anything above.
	EffCall
)

// EffNone is the empty effect set.
const EffNone Effect = 0

// EffAny is the top of the lattice.
const EffAny = EffAlloc | EffWrite | EffRead | EffControl | EffCall

// Pure reports the subtree has no effects at all.
func (e Effect) Pure() bool { return e == EffNone }

// PureExceptAlloc reports the subtree's only possible effect is heap
// allocation (safe to delete, unsafe to duplicate).
func (e Effect) PureExceptAlloc() bool { return e&^EffAlloc == 0 }

// Observable reports whether execution can be observed by other code
// (writes, control transfer, unknown calls) — such effects may be neither
// deleted nor reordered across each other.
func (e Effect) Observable() bool {
	return e&(EffWrite|EffControl|EffCall) != 0
}

func (e Effect) String() string {
	if e == 0 {
		return "pure"
	}
	s := ""
	add := func(bit Effect, name string) {
		if e&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(EffAlloc, "alloc")
	add(EffWrite, "write")
	add(EffRead, "read")
	add(EffControl, "control")
	add(EffCall, "call")
	return s
}
