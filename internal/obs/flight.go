package obs

// The flight recorder is the always-on half of the observability layer:
// a bounded, lock-free ring of typed events (request lifecycle, load
// shedding, deadline interrupts, tier promotions, GC pauses, disk-cache
// traffic, fault injection) that survives until the moment of a crash
// and can therefore explain it. Writers pay one atomic add, one small
// allocation and one atomic pointer store per event — events are rare
// (none fire per-instruction), so the recorder stays within the ≤3%
// overhead budget measured by BenchmarkObsOverhead.
//
// Readers (the /debug/events endpoint, the SIGQUIT/panic dump, the
// per-request trace export) snapshot the ring without stopping writers:
// each slot holds an immutable *Event, so a concurrent overwrite swaps
// whole events and a reader can never observe a half-written record.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Event kinds. The runtime (internal/s1) emits the same strings through
// Machine.OnEvent without importing this package; keep them in sync.
const (
	EvReqStart        = "req-start"
	EvReqFinish       = "req-finish"
	EvLoadShed        = "load-shed"
	EvDeadline        = "deadline"
	EvTierPromote     = "tier-promote"
	EvTierRefusion    = "tier-refusion"
	EvGCPause         = "gc-pause"
	EvGCMinorPause    = "gc-minor-pause"
	EvCacheHit        = "cache-hit"
	EvCacheMiss       = "cache-miss"
	EvCacheQuarantine = "cache-quarantine"
	EvFault           = "fault"
	EvPanic           = "panic"
	// Snapshot lifecycle (DESIGN.md §14): a checkpoint written, a warm
	// boot restored, a file quarantined, and a restore that degraded to a
	// cold compile.
	EvSnapshotCheckpoint = "snapshot-checkpoint"
	EvSnapshotRestore    = "snapshot-restore"
	EvSnapshotQuarantine = "snapshot-quarantine"
	EvSnapshotFallback   = "snapshot-fallback"
	// Scheduler lifecycle (DESIGN.md §16): a task parked waiting for a
	// slot, resumed (DurNs = the wait), preempted at a safepoint, or
	// failed on a dry tenant gas bucket. internal/sched emits the same
	// strings without importing this package; keep them in sync.
	EvSchedPark    = "sched-park"
	EvSchedResume  = "sched-resume"
	EvSchedPreempt = "sched-preempt"
	EvGasExhausted = "gas-exhausted"
	// Resident-session lifecycle (DESIGN.md §16): created, deleted,
	// idle-expired, checkpointed at drain, restored at boot, or promised
	// by the manifest with no restorable checkpoint (a hard kill).
	EvSessionCreate     = "session-create"
	EvSessionDelete     = "session-delete"
	EvSessionExpire     = "session-expire"
	EvSessionCheckpoint = "session-checkpoint"
	EvSessionRestore    = "session-restore"
	EvSessionLost       = "session-lost"
)

// Severities, ordered.
const (
	SevDebug = "debug"
	SevInfo  = "info"
	SevWarn  = "warn"
	SevError = "error"
)

// sevRank orders severities for minimum-severity filtering; unknown
// strings rank as info.
func sevRank(s string) int {
	switch s {
	case SevDebug:
		return 0
	case SevWarn:
		return 2
	case SevError:
		return 3
	}
	return 1
}

// kindSeverity is the default severity of each event kind; Record fills
// it in when the caller leaves Sev empty.
func kindSeverity(kind string) string {
	switch kind {
	case EvLoadShed, EvDeadline, EvCacheQuarantine, EvFault,
		EvSnapshotQuarantine, EvSnapshotFallback,
		EvGasExhausted, EvSessionLost:
		return SevWarn
	case EvPanic:
		return SevError
	}
	return SevInfo
}

// Event is one flight-recorder record. All fields are immutable once
// recorded.
type Event struct {
	// Seq is the global record number (1-based, never reused); gaps in a
	// snapshot mean the ring wrapped over the missing records.
	Seq uint64 `json:"seq"`
	// WallNs is the wall-clock time (UnixNano) derived from the
	// recorder's monotonic clock, so event order and spacing stay exact
	// even across wall-clock adjustments.
	WallNs int64 `json:"wall_ns"`
	// MonoNs is nanoseconds since the recorder was created.
	MonoNs int64 `json:"mono_ns"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Sev is one of the Sev* constants (defaulted from Kind when empty
	// at Record time).
	Sev string `json:"sev"`
	// Trace is the W3C trace id correlating this event to one request.
	Trace string `json:"trace,omitempty"`
	// Unit names what the event is about: a function, a request path, a
	// cache entry.
	Unit string `json:"unit,omitempty"`
	// Msg is free-form detail.
	Msg string `json:"msg,omitempty"`
	// DurNs carries the event's duration when it has one (GC pause,
	// request wall time).
	DurNs int64 `json:"dur_ns,omitempty"`
	// Tenant and Session are the multi-tenant routing labels (reserved
	// for the M:N scheduler; the daemon passes them through from
	// requests today).
	Tenant  string `json:"tenant,omitempty"`
	Session string `json:"session,omitempty"`
}

// Flight is the bounded event ring. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so instrumented code can be
// wired unconditionally.
type Flight struct {
	start    time.Time
	seq      atomic.Uint64
	slots    []atomic.Pointer[Event]
	sizeMask uint64
}

// DefaultFlightSize is the ring capacity used when NewFlight is given a
// non-positive size.
const DefaultFlightSize = 4096

// NewFlight returns a recorder holding the most recent events; size is
// rounded up to a power of two (minimum 16).
func NewFlight(size int) *Flight {
	n := 16
	for n < size {
		n <<= 1
	}
	if size <= 0 {
		n = DefaultFlightSize
	}
	return &Flight{
		start:    time.Now(),
		slots:    make([]atomic.Pointer[Event], n),
		sizeMask: uint64(n - 1),
	}
}

// Record stamps and stores one event. The caller fills Kind and any of
// Trace/Unit/Msg/DurNs/Tenant/Session; Seq, WallNs, MonoNs and a
// defaulted Sev are assigned here. Safe on a nil recorder.
func (f *Flight) Record(ev Event) {
	if f == nil {
		return
	}
	mono := time.Since(f.start)
	ev.MonoNs = mono.Nanoseconds()
	ev.WallNs = f.start.Add(mono).UnixNano()
	if ev.Sev == "" {
		ev.Sev = kindSeverity(ev.Kind)
	}
	ev.Seq = f.seq.Add(1)
	f.slots[(ev.Seq-1)&f.sizeMask].Store(&ev)
}

// Len reports how many events have ever been recorded (not how many are
// still resident).
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Filter selects events for Snapshot/WriteJSON/HTTP. Zero values match
// everything.
type Filter struct {
	// Kind matches exactly when non-empty.
	Kind string
	// MinSev drops events below this severity when non-empty.
	MinSev string
	// Trace matches the trace id exactly when non-empty.
	Trace string
	// Unit matches exactly when non-empty.
	Unit string
	// Max bounds the result to the most recent N events when > 0.
	Max int
}

func (fl Filter) match(ev *Event) bool {
	if fl.Kind != "" && ev.Kind != fl.Kind {
		return false
	}
	if fl.Trace != "" && ev.Trace != fl.Trace {
		return false
	}
	if fl.Unit != "" && ev.Unit != fl.Unit {
		return false
	}
	if fl.MinSev != "" && sevRank(ev.Sev) < sevRank(fl.MinSev) {
		return false
	}
	return true
}

// Snapshot returns the matching resident events in sequence order.
// Writers are not blocked; a record racing the snapshot either appears
// or does not, but never appears torn.
func (f *Flight) Snapshot(fl Filter) []Event {
	if f == nil {
		return nil
	}
	out := make([]Event, 0, len(f.slots))
	for i := range f.slots {
		if p := f.slots[i].Load(); p != nil && fl.match(p) {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if fl.Max > 0 && len(out) > fl.Max {
		out = out[len(out)-fl.Max:]
	}
	return out
}

// flightDump is the JSON shape of a recorder dump.
type flightDump struct {
	// Recorded is the total ever recorded; Dropped is how many of those
	// the ring has already overwritten.
	Recorded uint64  `json:"recorded"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// WriteJSON dumps the matching events as one JSON object — the
// SIGQUIT/panic post-mortem format and the /debug/events body.
func (f *Flight) WriteJSON(w io.Writer, fl Filter) error {
	if f == nil {
		return fmt.Errorf("obs: no flight recorder")
	}
	total := f.seq.Load()
	dropped := uint64(0)
	if total > uint64(len(f.slots)) {
		dropped = total - uint64(len(f.slots))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(flightDump{Recorded: total, Dropped: dropped, Events: f.Snapshot(fl)})
}

// ServeHTTP serves the ring as /debug/events with query filters:
// ?kind=gc-pause&sev=warn&trace=<id>&unit=<name>&n=100.
func (f *Flight) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl := Filter{
		Kind:   r.URL.Query().Get("kind"),
		MinSev: r.URL.Query().Get("sev"),
		Trace:  r.URL.Query().Get("trace"),
		Unit:   r.URL.Query().Get("unit"),
	}
	if n := r.URL.Query().Get("n"); n != "" {
		if v, err := strconv.Atoi(n); err == nil {
			fl.Max = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if f == nil {
		json.NewEncoder(w).Encode(flightDump{Events: []Event{}})
		return
	}
	f.WriteJSON(w, fl)
}
