// Package obs is the observability layer of the reproduction: a
// low-overhead tracing and metrics subsystem threaded through the compile
// pipeline and the S-1 simulator. The paper's own methodology is
// observational — its tables are meters read off the compiler and the
// simulator — and obs generalizes those meters into three instruments:
//
//   - Phase tracing: every per-defun pipeline stage (read, convert,
//     cache-probe, optimize, cse, analysis, binding, rep, pdl, emit)
//     records a Span with duration, tree-node count and worker id.
//     Spans export as Chrome trace-event JSON (trace.go), viewable in
//     Perfetto, and aggregate into a per-phase table (report.go).
//   - Rule provenance: every optimizer rule fire becomes a RuleEvent
//     (rule name, back-translated before/after source), generalizing the
//     §5 transcript into a queryable log with a top-N report.
//   - Runtime metrics: the machine meters surface over HTTP in
//     Prometheus text format alongside net/http/pprof (debug.go).
//
// The whole API is nil-safe: a nil *Recorder produces nil *Task and
// *ActiveSpan values whose methods are no-ops, so instrumented code pays
// only a nil check on the hot path when observability is off.
package obs

import (
	"sync"
	"time"
)

// Span is one completed pipeline phase for one compilation unit.
type Span struct {
	// Phase is the pipeline stage name (e.g. "optimize", "emit").
	Phase string
	// Unit is the compilation unit — the defun name, or a %batch-N /
	// %toplevel-N pseudo-unit for whole-batch and top-level-form work.
	Unit string
	// Worker identifies the goroutine: 0 is the driving goroutine
	// (read, convert, cache probes, emission, sequential compiles),
	// 1..Jobs are middle-end pool workers.
	Worker int
	// Start and End are offsets from the Recorder's epoch.
	Start, End time.Duration
	// Nodes is the tree-node count after the phase ran (0 if not
	// measured).
	Nodes int
}

// RuleEvent is one optimizer transformation, the structured form of a
// §5 transcript entry.
type RuleEvent struct {
	// Unit is the function being optimized.
	Unit string
	// Rule is the transformation name (e.g. META-SUBSTITUTE).
	Rule string
	// Before and After are the back-translated source forms.
	Before, After string
	// Ts is the fire time as an offset from the Recorder's epoch.
	Ts time.Duration
	// Worker is the goroutine that fired the rule.
	Worker int
}

// Instant is a standalone point event on a worker timeline — runtime
// happenings (tier promotions, GC pauses, cache traffic) merged into the
// Chrome trace alongside the compile-phase spans.
type Instant struct {
	// Name is the event label shown in the trace viewer.
	Name string
	// Cat is the trace category (e.g. "runtime", "cache").
	Cat string
	// Ts is the offset from the Recorder's epoch.
	Ts time.Duration
	// Worker is the timeline (thread) the event renders on.
	Worker int
	// Args are extra key/values shown when the event is selected.
	Args map[string]any
}

// Recorder collects spans, rule events and instants. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops).
type Recorder struct {
	epoch       time.Time
	mu          sync.Mutex
	spans       []Span
	rules       []RuleEvent
	instants    []Instant
	threadNames map[int]string
}

// NewRecorder returns an empty recorder with its epoch set to now.
func NewRecorder() *Recorder { return &Recorder{epoch: time.Now()} }

// Epoch returns the recorder's zero time (zero value on a nil
// recorder). Callers converting wall-clock event times into trace
// offsets subtract this.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// SetThreadName overrides the display name of one worker timeline in
// the trace export (the default is "driver"/"worker N").
func (r *Recorder) SetThreadName(worker int, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.threadNames == nil {
		r.threadNames = map[int]string{}
	}
	r.threadNames[worker] = name
	r.mu.Unlock()
}

// AddInstant records a point event for the trace export.
func (r *Recorder) AddInstant(ev Instant) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.instants = append(r.instants, ev)
	r.mu.Unlock()
}

// Instants returns a snapshot of the recorded instants.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Instant, len(r.instants))
	copy(out, r.instants)
	return out
}

// Task returns a span factory for one compilation unit on one worker.
// Returns nil (a valid no-op task) on a nil recorder.
func (r *Recorder) Task(unit string, worker int) *Task {
	if r == nil {
		return nil
	}
	return &Task{r: r, unit: unit, worker: worker}
}

// AddRules appends rule events. The compile pipeline buffers each unit's
// events and appends them at emission time, which is serialized in source
// order — so the rule log is deterministic regardless of Jobs.
func (r *Recorder) AddRules(evs []RuleEvent) {
	if r == nil || len(evs) == 0 {
		return
	}
	r.mu.Lock()
	r.rules = append(r.rules, evs...)
	r.mu.Unlock()
}

// Spans returns a snapshot of the recorded spans.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Rules returns a snapshot of the recorded rule events.
func (r *Recorder) Rules() []RuleEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RuleEvent, len(r.rules))
	copy(out, r.rules)
	return out
}

// CountSpans reports how many spans match unit and phase ("" matches
// anything).
func (r *Recorder) CountSpans(unit, phase string) int {
	n := 0
	for _, s := range r.Spans() {
		if (unit == "" || s.Unit == unit) && (phase == "" || s.Phase == phase) {
			n++
		}
	}
	return n
}

// Task makes spans for one (unit, worker) pair.
type Task struct {
	r      *Recorder
	unit   string
	worker int
	// phase names the currently open span, giving panic recovery a way
	// to report which pipeline stage was in flight. Tasks are used by a
	// single goroutine, so no lock.
	phase string
}

// CurrentPhase returns the phase of the open span, "" when none is open
// (or for the nil no-op task).
func (t *Task) CurrentPhase() string {
	if t == nil {
		return ""
	}
	return t.phase
}

// Live reports whether the task records anything (false for the nil
// no-op task). Use it to skip building event payloads when off.
func (t *Task) Live() bool { return t != nil }

// Worker returns the task's worker id (0 for the nil task).
func (t *Task) Worker() int {
	if t == nil {
		return 0
	}
	return t.worker
}

// Since returns the current offset from the recorder epoch (0 for the
// nil task).
func (t *Task) Since() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.r.epoch)
}

// Start opens a span for one phase. End must be called on the same
// goroutine; spans on one worker must nest properly (which they do when
// Start/End bracket call structure).
func (t *Task) Start(phase string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.phase = phase
	return &ActiveSpan{t: t, phase: phase, start: time.Since(t.r.epoch)}
}

// ActiveSpan is an open span; End records it.
type ActiveSpan struct {
	t     *Task
	phase string
	start time.Duration
	nodes int
}

// SetNodes attaches a tree-node count to the span.
func (s *ActiveSpan) SetNodes(n int) {
	if s != nil {
		s.nodes = n
	}
}

// End closes the span and records it.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	t := s.t
	t.phase = ""
	sp := Span{
		Phase: s.phase, Unit: t.unit, Worker: t.worker,
		Start: s.start, End: time.Since(t.r.epoch), Nodes: s.nodes,
	}
	t.r.mu.Lock()
	t.r.spans = append(t.r.spans, sp)
	t.r.mu.Unlock()
}
