package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Registry aggregates everything the debug endpoint exposes: gauge/
// counter snapshot functions, histograms, and the flight recorder. It
// replaces the single metrics-func parameter the mux used to take, so
// several subsystems (daemon stats, system meters, latency histograms)
// can feed one /metrics page without re-registering handlers.
type Registry struct {
	mu     sync.Mutex
	funcs  []func() map[string]float64
	hists  []*Histogram
	flight *Flight
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// AddMetrics registers a snapshot function whose map is merged into
// /metrics output.
func (r *Registry) AddMetrics(fn func() map[string]float64) *Registry {
	if r == nil || fn == nil {
		return r
	}
	r.mu.Lock()
	r.funcs = append(r.funcs, fn)
	r.mu.Unlock()
	return r
}

// AddHistogram registers a histogram for /metrics output.
func (r *Registry) AddHistogram(h *Histogram) *Registry {
	if r == nil || h == nil {
		return r
	}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return r
}

// SetFlight attaches the flight recorder served at /debug/events.
func (r *Registry) SetFlight(f *Flight) *Registry {
	if r == nil {
		return r
	}
	r.mu.Lock()
	r.flight = f
	r.mu.Unlock()
	return r
}

// Flight returns the attached flight recorder (nil if none).
func (r *Registry) Flight() *Flight {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flight
}

// WriteProm renders the merged metric snapshot: all snapshot-function
// maps (later functions win on name collisions) followed by all
// histograms.
func (r *Registry) WriteProm(w http.ResponseWriter) {
	r.mu.Lock()
	funcs := append([]func() map[string]float64(nil), r.funcs...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	merged := map[string]float64{}
	for _, fn := range funcs {
		for k, v := range fn() {
			merged[k] = v
		}
	}
	WriteProm(w, merged)
	for _, h := range hists {
		h.WriteProm(w)
	}
}

// NewDebugMux builds the debug HTTP handler: /metrics serves the
// registry's merged metrics in Prometheus text format, /debug/events
// serves the flight recorder (empty event list if none attached), and
// /debug/pprof/* serves the standard Go profiling endpoints. Callers may
// pass register functions to hang extra endpoints off the same mux (the
// daemon's health/readiness/request-span handlers do). The mux is
// private — nothing is registered on http.DefaultServeMux.
func NewDebugMux(reg *Registry, register ...func(*http.ServeMux)) *http.ServeMux {
	if reg == nil {
		reg = NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		if f := reg.Flight(); f != nil {
			f.ServeHTTP(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(flightDump{Events: []Event{}})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range register {
		r(mux)
	}
	return mux
}

// DebugServer is a running debug listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer begins serving the debug mux on addr (e.g.
// "localhost:6060"; ":0" picks a free port). The server runs until
// Close.
func StartDebugServer(addr string, reg *Registry, register ...func(*http.ServeMux)) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(reg, register...)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
