package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the debug HTTP handler: /metrics serves the
// snapshot function's metrics in Prometheus text format, and
// /debug/pprof/* serves the standard Go profiling endpoints. Callers may
// pass register functions to hang extra endpoints off the same mux (the
// daemon's health/readiness/request-span handlers do). The mux is
// private — nothing is registered on http.DefaultServeMux.
func NewDebugMux(metrics func() map[string]float64, register ...func(*http.ServeMux)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, metrics())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range register {
		r(mux)
	}
	return mux
}

// DebugServer is a running debug listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer begins serving the debug mux on addr (e.g.
// "localhost:6060"; ":0" picks a free port). The server runs until
// Close.
func StartDebugServer(addr string, metrics func() map[string]float64, register ...func(*http.ServeMux)) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewDebugMux(metrics, register...)}
	go srv.Serve(ln)
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close shuts the server down.
func (d *DebugServer) Close() error { return d.srv.Close() }
