package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecordAndSnapshot(t *testing.T) {
	f := NewFlight(64)
	f.Record(Event{Kind: EvReqStart, Trace: "t1", Unit: "/run"})
	f.Record(Event{Kind: EvGCPause, Trace: "t1", DurNs: 1234})
	f.Record(Event{Kind: EvLoadShed, Trace: "t2"})

	all := f.Snapshot(Filter{})
	if len(all) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("snapshot not in sequence order: %v", all)
		}
		if all[i].MonoNs < all[i-1].MonoNs {
			t.Fatalf("monotonic clock went backwards: %v", all)
		}
	}
	// Severity defaulting: load-shed is warn, the others info.
	if all[0].Sev != SevInfo || all[2].Sev != SevWarn {
		t.Errorf("severity defaults wrong: %q %q", all[0].Sev, all[2].Sev)
	}

	if got := f.Snapshot(Filter{Trace: "t1"}); len(got) != 2 {
		t.Errorf("trace filter: %d events, want 2", len(got))
	}
	if got := f.Snapshot(Filter{Kind: EvGCPause}); len(got) != 1 || got[0].DurNs != 1234 {
		t.Errorf("kind filter: %+v", got)
	}
	if got := f.Snapshot(Filter{MinSev: SevWarn}); len(got) != 1 || got[0].Kind != EvLoadShed {
		t.Errorf("sev filter: %+v", got)
	}
	if got := f.Snapshot(Filter{Max: 1}); len(got) != 1 || got[0].Kind != EvLoadShed {
		t.Errorf("max filter should keep the most recent: %+v", got)
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *Flight
	f.Record(Event{Kind: EvPanic}) // must not panic
	if f.Snapshot(Filter{}) != nil {
		t.Error("nil snapshot should be nil")
	}
	if f.Len() != 0 {
		t.Error("nil Len should be 0")
	}
	if err := f.WriteJSON(&bytes.Buffer{}, Filter{}); err == nil {
		t.Error("nil WriteJSON should error")
	}
}

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(8) // rounds to 16 slots
	const n = 100
	for i := 0; i < n; i++ {
		f.Record(Event{Kind: EvReqFinish, Unit: "u"})
	}
	got := f.Snapshot(Filter{})
	if len(got) != 16 {
		t.Fatalf("resident events = %d, want ring size 16", len(got))
	}
	// The survivors are exactly the newest 16.
	if got[0].Seq != n-16+1 || got[len(got)-1].Seq != n {
		t.Errorf("survivor range [%d, %d], want [%d, %d]",
			got[0].Seq, got[len(got)-1].Seq, n-16+1, n)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf, Filter{}); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Recorded uint64  `json:"recorded"`
		Dropped  uint64  `json:"dropped"`
		Events   []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Recorded != n || dump.Dropped != n-16 || len(dump.Events) != 16 {
		t.Errorf("dump recorded=%d dropped=%d events=%d", dump.Recorded, dump.Dropped, len(dump.Events))
	}
}

// TestFlightConcurrent hammers the ring with parallel writers while a
// reader snapshots and dumps continuously; run under -race this is the
// lock-freedom proof (no torn events, no data races).
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(128)
	const writers = 8
	const perWriter = 1000

	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := f.Snapshot(Filter{})
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Error("snapshot out of order during writes")
					return
				}
			}
			var buf bytes.Buffer
			if err := f.WriteJSON(&buf, Filter{Kind: EvGCPause}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kinds := []string{EvGCPause, EvTierPromote, EvReqFinish, EvCacheHit}
			for i := 0; i < perWriter; i++ {
				f.Record(Event{Kind: kinds[i%len(kinds)], Unit: "w"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()

	if got := f.Len(); got != writers*perWriter {
		t.Errorf("recorded %d events, want %d", got, writers*perWriter)
	}
	// After the dust settles every resident slot holds a valid event.
	evs := f.Snapshot(Filter{})
	if len(evs) != 128 {
		t.Errorf("resident = %d, want 128", len(evs))
	}
	for _, ev := range evs {
		if ev.Kind == "" || ev.Seq == 0 || ev.Sev == "" {
			t.Fatalf("torn event: %+v", ev)
		}
	}
}

func TestFlightHTTP(t *testing.T) {
	f := NewFlight(64)
	f.Record(Event{Kind: EvReqFinish, Trace: "abc"})
	f.Record(Event{Kind: EvLoadShed, Trace: "def"})

	req := httptest.NewRequest("GET", "/debug/events?kind=load-shed", nil)
	w := httptest.NewRecorder()
	f.ServeHTTP(w, req)
	body := w.Body.String()
	if !strings.Contains(body, `"load-shed"`) || strings.Contains(body, `"req-finish"`) {
		t.Errorf("kind filter not applied: %s", body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}

	req = httptest.NewRequest("GET", "/debug/events?trace=abc", nil)
	w = httptest.NewRecorder()
	f.ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), `"abc"`) || strings.Contains(w.Body.String(), `"def"`) {
		t.Errorf("trace filter not applied: %s", w.Body.String())
	}
}
