package obs

// Log-bucketed latency histograms with atomic counters, in the HDR
// spirit: fixed exponential bucket bounds chosen at construction, one
// atomic increment per observation, no locks on the hot path. Exported
// in real Prometheus histogram exposition format (cumulative _bucket
// series, _sum, _count, TYPE histogram metadata).

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets. Observe is
// wait-free (one atomic add, one CAS loop for the sum); snapshots read
// the counters without stopping writers, so a snapshot racing an
// observation may be off by that one observation but is never torn
// beyond that. Nil-safe: all methods no-op on a nil receiver.
type Histogram struct {
	name   string
	help   string
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	// sumBits holds math.Float64bits of the running sum, updated by CAS.
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (exclusive of the implicit +Inf bucket).
func NewHistogram(name, help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// ExpBuckets returns n exponential bucket bounds starting at min and
// multiplying by factor: min, min*factor, min*factor^2, ...
func ExpBuckets(min, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := min
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the standard latency layout: 100µs to ~13s in
// powers of two (18 bounds).
func DurationBuckets() []float64 {
	return ExpBuckets(100e-6, 2, 18)
}

// CycleBuckets is the standard eval-cycle layout: 1k to ~4G cycles in
// powers of four (12 bounds).
func CycleBuckets() []float64 {
	return ExpBuckets(1000, 4, 12)
}

// Name reports the metric name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// WriteProm renders the histogram in Prometheus text exposition format:
// TYPE metadata, cumulative buckets with le labels, +Inf, _sum, _count.
func (h *Histogram) WriteProm(w io.Writer) {
	if h == nil {
		return
	}
	if h.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", h.name, h.help)
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", h.name)
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}

func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}
