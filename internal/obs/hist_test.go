package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("test_seconds", "help", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // le=0.01
	h.Observe(0.01)  // le=0.01 (bounds are inclusive upper)
	h.Observe(0.05)  // le=0.1
	h.Observe(5)     // +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.06 || got > 5.07 {
		t.Fatalf("sum = %g", got)
	}

	var b strings.Builder
	h.WriteProm(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		"test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramNilAndDuration(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveDuration(time.Second)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram should count nothing")
	}
	var b strings.Builder
	h.WriteProm(&b)
	if b.Len() != 0 {
		t.Error("nil histogram should write nothing")
	}

	h2 := NewHistogram("d", "", DurationBuckets())
	h2.ObserveDuration(500 * time.Microsecond)
	if h2.Count() != 1 || h2.Sum() != 0.0005 {
		t.Errorf("duration observe: count=%d sum=%g", h2.Count(), h2.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("c", "", ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i % 100))
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	// Sum of 0..99 is 4950, observed 10 times per worker.
	if want := float64(workers * 10 * 4950); h.Sum() != want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestRegistryMetricsEndpoint(t *testing.T) {
	reg := NewRegistry().
		AddMetrics(func() map[string]float64 {
			return map[string]float64{"slc_requests_total": 3, "slc_heap": 10}
		})
	h := NewHistogram("slc_request_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	reg.AddHistogram(h)
	fl := NewFlight(16)
	fl.Record(Event{Kind: EvReqFinish})
	reg.SetFlight(fl)

	mux := NewDebugMux(reg)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	out := w.Body.String()
	for _, want := range []string{
		"# TYPE slc_requests_total counter",
		"# TYPE slc_heap gauge",
		"# TYPE slc_request_seconds histogram",
		`slc_request_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, out)
		}
	}

	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/events", nil))
	if !strings.Contains(w.Body.String(), `"req-finish"`) {
		t.Errorf("/debug/events missing event: %s", w.Body.String())
	}
}

// TestDebugMuxNoFlight: /debug/events degrades to an empty list when no
// recorder is attached, rather than 404ing.
func TestDebugMuxNoFlight(t *testing.T) {
	mux := NewDebugMux(NewRegistry())
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/events", nil))
	if !strings.Contains(w.Body.String(), `"events":[]`) {
		t.Errorf("expected empty events list, got: %s", w.Body.String())
	}
}
