package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// phaseOrder is the canonical pipeline order for reports; phases not
// listed sort after these, alphabetically.
var phaseOrder = []string{
	"read", "convert", "cache-probe", "optimize", "cse",
	"analysis", "binding", "rep", "pdl", "emit",
}

func phaseRank(name string) int {
	for i, p := range phaseOrder {
		if p == name {
			return i
		}
	}
	return len(phaseOrder)
}

// WritePhaseStats prints the aggregated per-phase table: span count,
// total/mean/max wall time and total tree nodes, in pipeline order.
// Output is deterministic for a given span multiset.
func (r *Recorder) WritePhaseStats(w io.Writer) {
	if r == nil {
		fmt.Fprintln(w, ";; no phase spans recorded")
		return
	}
	type agg struct {
		name  string
		count int
		total time.Duration
		max   time.Duration
		nodes int
	}
	byPhase := map[string]*agg{}
	for _, s := range r.Spans() {
		a := byPhase[s.Phase]
		if a == nil {
			a = &agg{name: s.Phase}
			byPhase[s.Phase] = a
		}
		d := s.End - s.Start
		a.count++
		a.total += d
		if d > a.max {
			a.max = d
		}
		a.nodes += s.Nodes
	}
	rows := make([]*agg, 0, len(byPhase))
	for _, a := range byPhase {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		ri, rj := phaseRank(rows[i].name), phaseRank(rows[j].name)
		if ri != rj {
			return ri < rj
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintln(w, ";; --- compile phase stats ---")
	fmt.Fprintf(w, ";; %-12s %7s %12s %12s %12s %8s\n",
		"phase", "spans", "total", "mean", "max", "nodes")
	for _, a := range rows {
		mean := time.Duration(0)
		if a.count > 0 {
			mean = a.total / time.Duration(a.count)
		}
		fmt.Fprintf(w, ";; %-12s %7d %12s %12s %12s %8d\n",
			a.name, a.count, fmtDur(a.total), fmtDur(mean), fmtDur(a.max), a.nodes)
	}
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// clip shortens a source form for one-line report display.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// WriteTopRules prints the n most-fired optimizer rules with one example
// transformation each — the queryable form of the paper's Table 4
// "which transformation bought what" question.
func (r *Recorder) WriteTopRules(w io.Writer, n int) {
	events := r.Rules()
	if len(events) == 0 {
		fmt.Fprintln(w, ";; no optimizer rule events recorded")
		return
	}
	type agg struct {
		name    string
		count   int
		example RuleEvent
	}
	byRule := map[string]*agg{}
	for _, ev := range events {
		a := byRule[ev.Rule]
		if a == nil {
			a = &agg{name: ev.Rule, example: ev}
			byRule[ev.Rule] = a
		}
		a.count++
	}
	rows := make([]*agg, 0, len(byRule))
	for _, a := range byRule {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].name < rows[j].name
	})
	if n > 0 && n < len(rows) {
		rows = rows[:n]
	}
	fmt.Fprintf(w, ";; --- optimizer rules (%d fires, %d distinct) ---\n",
		len(events), len(byRule))
	for _, a := range rows {
		fmt.Fprintf(w, ";; %6d  %s\n", a.count, a.name)
		fmt.Fprintf(w, ";;         e.g. in %s: %s\n", a.example.Unit, clip(a.example.Before, 60))
		fmt.Fprintf(w, ";;           => %s\n", clip(a.example.After, 60))
	}
}

// WriteProm renders a metric map in Prometheus text exposition format,
// sorted by name for deterministic output. Monotonic metrics (the
// `*_total` naming convention) are declared `counter`; everything else
// is a `gauge`. Keys may carry a label set (`name{tenant="x"}`): the
// TYPE line uses the bare name and is emitted once per family even when
// several labeled series share it (sorting keeps them adjacent).
// Histogram series are rendered by Histogram.WriteProm.
func WriteProm(w io.Writer, metrics map[string]float64) {
	names := make([]string, 0, len(metrics))
	for k := range metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	lastFamily := ""
	for _, k := range names {
		family := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			family = k[:i]
		}
		if family != lastFamily {
			typ := "gauge"
			if strings.HasSuffix(family, "_total") {
				typ = "counter"
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
			lastFamily = family
		}
		fmt.Fprintf(w, "%s %g\n", k, metrics[k])
	}
}
