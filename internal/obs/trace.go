package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceEvent is one Chrome trace-event (the Trace Event Format consumed
// by Perfetto and chrome://tracing). B/E pairs carry phase spans, "i"
// events carry optimizer rule fires, "M" events name the threads.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format container.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

func usec(d int64) float64 { return float64(d) / 1e3 }

// WriteTrace emits the recorded spans, rule events and instants as
// Chrome trace-event JSON. Each worker becomes a thread (tid = worker
// id); spans become properly nested B/E pairs with non-decreasing
// timestamps per thread; rule fires and instants become thread-scoped
// instant events. A worker that has only instants (e.g. the runtime
// timeline carrying GC pauses and tier promotions) still gets a thread.
func (r *Recorder) WriteTrace(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: no recorder")
	}
	spans := r.Spans()
	rules := r.Rules()
	instants := r.Instants()
	r.mu.Lock()
	names := make(map[int]string, len(r.threadNames))
	for k, v := range r.threadNames {
		names[k] = v
	}
	r.mu.Unlock()

	byWorker := map[int][]Span{}
	widSet := map[int]bool{}
	for _, s := range spans {
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
		widSet[s.Worker] = true
	}
	for _, ev := range rules {
		widSet[ev.Worker] = true
	}
	for _, ev := range instants {
		widSet[ev.Worker] = true
	}
	workers := make([]int, 0, len(widSet))
	for wid := range widSet {
		workers = append(workers, wid)
	}
	sort.Ints(workers)

	var events []traceEvent
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid, Tid: 0,
		Args: map[string]any{"name": "slc compile pipeline"},
	})
	for _, wid := range workers {
		name := names[wid]
		if name == "" {
			if wid == 0 {
				name = "driver"
			} else {
				name = fmt.Sprintf("worker %d", wid)
			}
		}
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: wid,
			Args: map[string]any{"name": name},
		})
	}

	for _, wid := range workers {
		tl := workerTimeline(wid, byWorker[wid])
		// Merge this worker's rule fires and instants into its timeline by
		// timestamp; instants never affect B/E nesting.
		insert := func(ie traceEvent) {
			at := sort.Search(len(tl), func(i int) bool { return tl[i].Ts > ie.Ts })
			tl = append(tl, traceEvent{})
			copy(tl[at+1:], tl[at:])
			tl[at] = ie
		}
		for _, ev := range rules {
			if ev.Worker != wid {
				continue
			}
			insert(traceEvent{
				Name: ev.Rule, Cat: "rule", Ph: "i", Ts: usec(int64(ev.Ts)),
				Pid: tracePid, Tid: wid, S: "t",
				Args: map[string]any{"unit": ev.Unit},
			})
		}
		for _, ev := range instants {
			if ev.Worker != wid {
				continue
			}
			cat := ev.Cat
			if cat == "" {
				cat = "event"
			}
			insert(traceEvent{
				Name: ev.Name, Cat: cat, Ph: "i", Ts: usec(int64(ev.Ts)),
				Pid: tracePid, Tid: wid, S: "t", Args: ev.Args,
			})
		}
		events = append(events, tl...)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// workerTimeline turns one worker's spans into an ordered B/E event
// stream. Spans on one worker either nest or are disjoint (each worker
// is a single goroutine with bracketed Start/End calls), so a
// containment forest ordered by (start asc, end desc) yields properly
// nested pairs with non-decreasing timestamps.
func workerTimeline(wid int, spans []Span) []traceEvent {
	type node struct {
		s        Span
		children []*node
	}
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].End > ordered[j].End
	})
	var roots []*node
	var stk []*node
	contains := func(p, c Span) bool { return c.Start >= p.Start && c.End <= p.End }
	for _, s := range ordered {
		n := &node{s: s}
		for len(stk) > 0 && !contains(stk[len(stk)-1].s, s) {
			stk = stk[:len(stk)-1]
		}
		if len(stk) == 0 {
			roots = append(roots, n)
		} else {
			top := stk[len(stk)-1]
			top.children = append(top.children, n)
		}
		stk = append(stk, n)
	}
	var out []traceEvent
	var walk func(n *node)
	walk = func(n *node) {
		args := map[string]any{"unit": n.s.Unit}
		if n.s.Nodes > 0 {
			args["nodes"] = n.s.Nodes
		}
		out = append(out, traceEvent{
			Name: n.s.Phase, Cat: "phase", Ph: "B", Ts: usec(int64(n.s.Start)),
			Pid: tracePid, Tid: wid, Args: args,
		})
		for _, c := range n.children {
			walk(c)
		}
		out = append(out, traceEvent{
			Name: n.s.Phase, Ph: "E", Ts: usec(int64(n.s.End)),
			Pid: tracePid, Tid: wid,
		})
	}
	for _, n := range roots {
		walk(n)
	}
	return out
}

// TraceSummary describes a validated trace file.
type TraceSummary struct {
	Events   int
	Spans    int
	Instants int
	Workers  int
}

// ValidateTrace checks a Chrome trace-event JSON file for
// well-formedness: it must parse, every B must have a matching E with
// the same name on the same thread (properly nested), and timestamps
// must be non-decreasing per thread. This is the golden checker used by
// the trace tests and cmd/tracecheck.
func ValidateTrace(data []byte) (TraceSummary, error) {
	var sum TraceSummary
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return sum, fmt.Errorf("trace is not valid JSON: %w", err)
	}
	sum.Events = len(tf.TraceEvents)
	stacks := map[int][]string{}
	lastTs := map[int]float64{}
	seen := map[int]bool{}
	for i, ev := range tf.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		seen[ev.Tid] = true
		if last, ok := lastTs[ev.Tid]; ok && ev.Ts < last {
			return sum, fmt.Errorf("event %d (%s %q tid %d): timestamp %g before %g",
				i, ev.Ph, ev.Name, ev.Tid, ev.Ts, last)
		}
		lastTs[ev.Tid] = ev.Ts
		switch ev.Ph {
		case "B":
			stacks[ev.Tid] = append(stacks[ev.Tid], ev.Name)
			sum.Spans++
		case "E":
			stk := stacks[ev.Tid]
			if len(stk) == 0 {
				return sum, fmt.Errorf("event %d: E %q on tid %d with empty stack", i, ev.Name, ev.Tid)
			}
			if top := stk[len(stk)-1]; ev.Name != "" && ev.Name != top {
				return sum, fmt.Errorf("event %d: E %q does not match open B %q on tid %d", i, ev.Name, top, ev.Tid)
			}
			stacks[ev.Tid] = stk[:len(stk)-1]
		case "i", "I":
			sum.Instants++
		default:
			return sum, fmt.Errorf("event %d: unsupported phase %q", i, ev.Ph)
		}
	}
	for tid, stk := range stacks {
		if len(stk) > 0 {
			return sum, fmt.Errorf("tid %d: %d unclosed span(s), first %q", tid, len(stk), stk[0])
		}
	}
	sum.Workers = len(seen)
	return sum, nil
}
