package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// The nil fast path is the whole point of the API: instrumented code
// holds a possibly-nil recorder and must be able to call straight
// through it.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	task := r.Task("f", 1)
	if task != nil {
		t.Fatalf("nil recorder returned non-nil task")
	}
	if task.Live() {
		t.Fatalf("nil task claims to be live")
	}
	if task.Worker() != 0 || task.Since() != 0 {
		t.Fatalf("nil task leaked state")
	}
	sp := task.Start("optimize")
	sp.SetNodes(7)
	sp.End() // must not panic
	r.AddRules([]RuleEvent{{Rule: "X"}})
	if r.Spans() != nil || r.Rules() != nil || r.CountSpans("", "") != 0 {
		t.Fatalf("nil recorder recorded something")
	}
}

func TestSpanRecording(t *testing.T) {
	r := NewRecorder()
	task := r.Task("poly", 2)
	if !task.Live() || task.Worker() != 2 {
		t.Fatalf("task identity wrong: live=%v worker=%d", task.Live(), task.Worker())
	}
	sp := task.Start("optimize")
	time.Sleep(time.Millisecond)
	sp.SetNodes(42)
	sp.End()
	task.Start("emit").End()

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.Phase != "optimize" || s.Unit != "poly" || s.Worker != 2 || s.Nodes != 42 {
		t.Fatalf("span fields wrong: %+v", s)
	}
	if s.End <= s.Start {
		t.Fatalf("span has no duration: %+v", s)
	}
	if r.CountSpans("poly", "") != 2 || r.CountSpans("", "emit") != 1 ||
		r.CountSpans("other", "") != 0 {
		t.Fatalf("CountSpans filtering wrong")
	}
}

func TestRuleEvents(t *testing.T) {
	r := NewRecorder()
	r.AddRules([]RuleEvent{
		{Unit: "f", Rule: "META-SUBSTITUTE", Before: "(a)", After: "(b)"},
		{Unit: "f", Rule: "META-SUBSTITUTE", Before: "(c)", After: "(d)"},
		{Unit: "g", Rule: "META-CALL-LAMBDA", Before: "(e)", After: "(f)"},
	})
	if got := len(r.Rules()); got != 3 {
		t.Fatalf("got %d rules, want 3", got)
	}
	var b strings.Builder
	r.WriteTopRules(&b, 2)
	out := b.String()
	if !strings.Contains(out, "META-SUBSTITUTE") || !strings.Contains(out, "2") {
		t.Fatalf("top-rules report missing dominant rule:\n%s", out)
	}
	// n=2 keeps both distinct rules; the report is ordered by fire count.
	if strings.Index(out, "META-SUBSTITUTE") > strings.Index(out, "META-CALL-LAMBDA") {
		t.Fatalf("top-rules not ordered by fire count:\n%s", out)
	}
}

// Concurrent span recording from many goroutines must be clean under
// -race and lose nothing.
func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			task := r.Task("unit", id)
			for i := 0; i < perWorker; i++ {
				sp := task.Start("optimize")
				sp.End()
				task.Start("emit").End()
			}
			r.AddRules([]RuleEvent{{Unit: "unit", Rule: "R", Worker: id}})
		}(w)
	}
	wg.Wait()
	if got := len(r.Spans()); got != workers*perWorker*2 {
		t.Fatalf("got %d spans, want %d", got, workers*perWorker*2)
	}
	if got := len(r.Rules()); got != workers {
		t.Fatalf("got %d rule events, want %d", got, workers)
	}
}

func TestPhaseStatsReport(t *testing.T) {
	r := NewRecorder()
	task := r.Task("f", 0)
	sp := task.Start("optimize")
	sp.SetNodes(10)
	sp.End()
	task.Start("emit").End()
	var b strings.Builder
	r.WritePhaseStats(&b)
	out := b.String()
	if !strings.Contains(out, "optimize") || !strings.Contains(out, "emit") {
		t.Fatalf("phase stats missing phases:\n%s", out)
	}
	// Pipeline order, not alphabetical: optimize before emit.
	if strings.Index(out, "optimize") > strings.Index(out, "emit") {
		t.Fatalf("phases not in pipeline order:\n%s", out)
	}
}

func TestWriteProm(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, map[string]float64{
		"slc_b_total": 2,
		"slc_a_total": 1.5,
		"slc_heap":    7,
	})
	// Monotonic *_total names are counters; the rest are gauges.
	want := "# TYPE slc_a_total counter\nslc_a_total 1.5\n" +
		"# TYPE slc_b_total counter\nslc_b_total 2\n" +
		"# TYPE slc_heap gauge\nslc_heap 7\n"
	if b.String() != want {
		t.Fatalf("prom output:\n%q\nwant:\n%q", b.String(), want)
	}
}
