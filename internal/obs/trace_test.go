package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// addSpan injects a span with explicit timing (tests need deterministic
// overlap patterns that wall-clock Start/End can't produce reliably).
func addSpan(r *Recorder, unit, phase string, worker int, start, end time.Duration) {
	r.mu.Lock()
	r.spans = append(r.spans, Span{
		Phase: phase, Unit: unit, Worker: worker, Start: start, End: end,
	})
	r.mu.Unlock()
}

// The golden well-formedness test: a trace with nested spans on one
// worker, concurrent spans on another worker, and rule instants must
// produce valid JSON with properly nested B/E pairs and monotonic
// timestamps per thread.
func TestWriteTraceWellFormed(t *testing.T) {
	r := NewRecorder()
	// Worker 1: an outer span containing two nested phases.
	addSpan(r, "f", "optimize", 1, 10*time.Microsecond, 100*time.Microsecond)
	addSpan(r, "f", "cse", 1, 20*time.Microsecond, 40*time.Microsecond)
	addSpan(r, "f", "analysis", 1, 50*time.Microsecond, 90*time.Microsecond)
	// Worker 2 overlaps worker 1 in wall time — fine across threads.
	addSpan(r, "g", "optimize", 2, 15*time.Microsecond, 80*time.Microsecond)
	// Driver does the serialized emits.
	addSpan(r, "f", "emit", 0, 120*time.Microsecond, 130*time.Microsecond)
	addSpan(r, "g", "emit", 0, 130*time.Microsecond, 140*time.Microsecond)
	r.AddRules([]RuleEvent{
		{Unit: "f", Rule: "META-SUBSTITUTE", Ts: 25 * time.Microsecond, Worker: 1},
		{Unit: "g", Rule: "META-CALL-LAMBDA", Ts: 30 * time.Microsecond, Worker: 2},
	})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	sum, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace not well-formed: %v\n%s", err, buf.String())
	}
	if sum.Spans != 6 {
		t.Fatalf("got %d spans, want 6", sum.Spans)
	}
	if sum.Instants != 2 {
		t.Fatalf("got %d instants, want 2", sum.Instants)
	}
	if sum.Workers != 3 {
		t.Fatalf("got %d workers, want 3 (driver + 2)", sum.Workers)
	}

	// Structural checks beyond the validator: thread names and span args
	// survive the round trip.
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	var haveDriver, haveUnit bool
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == 0 &&
			ev.Args["name"] == "driver" {
			haveDriver = true
		}
		if ev.Ph == "B" && ev.Name == "optimize" && ev.Args["unit"] == "f" {
			haveUnit = true
		}
	}
	if !haveDriver {
		t.Fatalf("missing driver thread_name metadata")
	}
	if !haveUnit {
		t.Fatalf("B event lost its unit arg")
	}
}

// Ties and identical extents — the degenerate nesting cases — must
// still produce a properly nested stream.
func TestWriteTraceTies(t *testing.T) {
	r := NewRecorder()
	addSpan(r, "a", "optimize", 1, 10*time.Microsecond, 50*time.Microsecond)
	addSpan(r, "a", "cse", 1, 10*time.Microsecond, 50*time.Microsecond) // identical extent
	addSpan(r, "a", "analysis", 1, 50*time.Microsecond, 50*time.Microsecond)
	addSpan(r, "a", "emit", 1, 50*time.Microsecond, 60*time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("tied spans produced malformed trace: %v\n%s", err, buf.String())
	}
}

func TestValidateTraceRejectsBroken(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{"traceEvents": [`},
		{"unmatched E", `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":0}]}`},
		{"unclosed B", `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":0}]}`},
		{"crossed pair", `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
			{"name":"b","ph":"B","ts":2,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":3,"pid":1,"tid":0},
			{"name":"b","ph":"E","ts":4,"pid":1,"tid":0}]}`},
		{"time travel", `{"traceEvents":[
			{"name":"a","ph":"B","ts":5,"pid":1,"tid":0},
			{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]}`},
	}
	for _, c := range cases {
		if _, err := ValidateTrace([]byte(c.body)); err == nil {
			t.Errorf("%s: validator accepted a broken trace", c.name)
		}
	}
}

func TestWriteTraceNilRecorder(t *testing.T) {
	var r *Recorder
	if err := r.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatalf("nil recorder WriteTrace should error")
	}
}
