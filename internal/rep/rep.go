// Package rep implements the representation analysis of §6.2: a top-down
// pass assigns every node a desired representation (WANTREP), a bottom-up
// pass a deliverable representation (ISREP), and code generation inserts
// a coercion wherever they differ. The aim is to interface the "pointer
// world" of LISP objects and the "number world" of raw machine values at
// least cost — in particular, to avoid the expensive raw→pointer
// conversion, which "may entail allocation of new storage and consequent
// garbage-collection overhead".
package rep

import (
	"repro/internal/prim"
	"repro/internal/tree"
)

// VarReps records the chosen run-time representation for each variable.
// Variables whose references disagree fall back to POINTER — "if not all
// the references to a variable agree as to what type is desirable for
// it, the type POINTER can always be used".
type VarReps map[*tree.Var]tree.Rep

// Annotate runs representation analysis over a function. Enabled=false
// (the E5 ablation) forces POINTER everywhere, modeling a compiler
// without the phase.
func Annotate(root tree.Node, enabled bool) VarReps {
	vr := VarReps{}
	if !enabled {
		forcePointer(root)
		return vr
	}
	want(root, tree.RepPOINTER)
	decideVarReps(root, vr)
	is(root, vr)
	return vr
}

// Rep returns the representation of a variable (POINTER by default).
func (vr VarReps) Rep(v *tree.Var) tree.Rep {
	if r, ok := vr[v]; ok {
		return r
	}
	return tree.RepPOINTER
}

func forcePointer(n tree.Node) {
	tree.PostWalk(n, func(m tree.Node) {
		in := m.Info()
		in.WantRep = tree.RepPOINTER
		in.IsRep = tree.RepPOINTER
		if _, ok := m.(*tree.Progn); ok {
			return
		}
	})
	// Test positions may still jump.
	markJumpTests(n)
}

func markJumpTests(n tree.Node) {
	tree.Walk(n, func(m tree.Node) bool {
		if iff, ok := m.(*tree.If); ok {
			iff.Test.Info().WantRep = tree.RepJUMP
		}
		return true
	})
}

// want is the top-down WANTREP pass: "the WANTREP for a node is
// determined by its context within its parent node and by the WANTREP of
// the parent".
func want(n tree.Node, w tree.Rep) {
	n.Info().WantRep = w
	switch x := n.(type) {
	case *tree.Literal, *tree.VarRef, *tree.FunRef, *tree.Go:

	case *tree.Setq:
		// The stored value's representation is fixed by the variable;
		// decided later, default POINTER for safety.
		want(x.Value, tree.RepPOINTER)

	case *tree.If:
		// "For an if expression (if p x y), the WANTREP for the
		// expression p is JUMP; we would prefer that the result of
		// calculating p be a conditional jump rather than an actual
		// value."
		want(x.Test, tree.RepJUMP)
		want(x.Then, w)
		want(x.Else, w)

	case *tree.Progn:
		for i, f := range x.Forms {
			if i == len(x.Forms)-1 {
				want(f, w)
			} else {
				want(f, tree.RepNONE)
			}
		}

	case *tree.Call:
		switch fn := x.Fn.(type) {
		case *tree.FunRef:
			// Array accessors have mixed signatures: pointer array, raw
			// fixnum subscripts, raw float element.
			switch fn.Name.Name {
			case "aref$f":
				for i, a := range x.Args {
					if i == 0 {
						want(a, tree.RepPOINTER)
					} else {
						want(a, tree.RepSWFIX)
					}
				}
				return
			case "aset$f":
				for i, a := range x.Args {
					switch i {
					case 0:
						want(a, tree.RepPOINTER)
					case 1:
						want(a, tree.RepSWFLO)
					default:
						want(a, tree.RepSWFIX)
					}
				}
				return
			}
			p := prim.Lookup(fn.Name)
			argRep := tree.RepPOINTER
			if p != nil && p.ArgRep != tree.RepUnknown {
				argRep = p.ArgRep
			}
			for _, a := range x.Args {
				want(a, argRep)
			}
		case *tree.Lambda:
			// A let: each argument wants the representation its variable
			// will use; decided in decideVarReps, refined in the is pass.
			// First approximation: derive from the variable's uses later;
			// here pass UNKNOWN placeholders as POINTER.
			for _, a := range x.Args {
				want(a, tree.RepPOINTER)
			}
			want(x.Fn, w)
		default:
			want(x.Fn, tree.RepPOINTER)
			for _, a := range x.Args {
				want(a, tree.RepPOINTER)
			}
		}
	case *tree.Lambda:
		for _, o := range x.Optional {
			want(o.Default, tree.RepPOINTER)
		}
		// A function body delivers a pointer (the uniform procedure
		// interface of §6.3: "all arguments to user functions must be in
		// pointer format", and so must results). For OPEN/JUMP lambdas
		// the body inherits the call's context via the call node's
		// WANTREP, propagated by codegen; representation-wise we keep
		// POINTER except when the call wants raw, handled below.
		bodyWant := tree.RepPOINTER
		if x.Strategy == tree.StrategyOpen || x.Strategy == tree.StrategyJump {
			if c, ok := x.Info().Parent.(*tree.Call); ok && c.Fn == tree.Node(x) {
				bodyWant = c.Info().WantRep
			}
		}
		want(x.Body, bodyWant)

	case *tree.ProgBody:
		for _, f := range x.Forms {
			want(f, tree.RepNONE)
		}

	case *tree.Return:
		want(x.Value, tree.RepPOINTER)

	case *tree.Catcher:
		want(x.Tag, tree.RepPOINTER)
		want(x.Body, tree.RepPOINTER)

	case *tree.Caseq:
		want(x.Key, tree.RepPOINTER)
		for _, cl := range x.Clauses {
			want(cl.Body, w)
		}
		if x.Default != nil {
			want(x.Default, w)
		}
	}
}

// decideVarReps solves the variable loop heuristically: a variable of an
// OPEN lambda gets a raw representation when (a) it is lexical,
// unassigned-or-consistently-assigned, not closed over, (b) every
// reference wants that raw representation, and (c) its initializer can
// deliver it. Otherwise POINTER.
func decideVarReps(root tree.Node, vr VarReps) {
	tree.Walk(root, func(n tree.Node) bool {
		call, ok := n.(*tree.Call)
		if !ok {
			return true
		}
		lam, ok := call.Fn.(*tree.Lambda)
		if !ok || lam.Strategy != tree.StrategyOpen {
			return true
		}
		for i, v := range lam.Required {
			if i >= len(call.Args) {
				break
			}
			if v.Special || v.Closed {
				continue
			}
			r := commonRefWant(v)
			if !r.Raw() {
				continue
			}
			if naturalRep(call.Args[i]) != r {
				continue
			}
			// Assignments must also deliver the representation.
			ok := true
			for _, s := range v.Sets {
				if naturalRep(s.Value) != r {
					ok = false
					break
				}
			}
			if ok {
				vr[v] = r
			}
		}
		return true
	})
}

// commonRefWant returns the representation every reference wants, or
// POINTER on disagreement.
func commonRefWant(v *tree.Var) tree.Rep {
	out := tree.RepUnknown
	for _, r := range v.Refs {
		w := r.NodeInfo.WantRep
		if w == tree.RepNONE {
			continue
		}
		if w == tree.RepJUMP {
			w = tree.RepPOINTER
		}
		if out == tree.RepUnknown {
			out = w
		} else if out != w {
			return tree.RepPOINTER
		}
	}
	if out == tree.RepUnknown {
		return tree.RepPOINTER
	}
	return out
}

// naturalRep is the representation a node delivers in isolation, ignoring
// coercions — used to break the variable cycle.
func naturalRep(n tree.Node) tree.Rep {
	switch x := n.(type) {
	case *tree.Literal:
		return litRep(x)
	case *tree.VarRef:
		return tree.RepPOINTER // refined in the is pass
	case *tree.Call:
		if fr, ok := x.Fn.(*tree.FunRef); ok {
			if p := prim.Lookup(fr.Name); p != nil && p.ResRep != tree.RepUnknown {
				return p.ResRep
			}
		}
		return tree.RepPOINTER
	case *tree.If:
		t := naturalRep(x.Then)
		e := naturalRep(x.Else)
		if t == e {
			return t
		}
		return tree.RepPOINTER
	}
	return tree.RepPOINTER
}

func litRep(l *tree.Literal) tree.Rep {
	// In isolation a literal delivers a pointer; in a raw context the is
	// pass lets it be emitted directly in raw form (literalIsRep). For
	// the natural-rep cycle-breaking heuristic, numeric literals count as
	// matching any raw context of their own type.
	if isFlonumLit(l) {
		return tree.RepSWFLO
	}
	if isFixnumLit(l) {
		return tree.RepSWFIX
	}
	return tree.RepPOINTER
}

// is is the bottom-up ISREP pass: "calculated for the node on the basis
// of the ISREP information for its descendants and the operation
// performed by the node itself".
func is(n tree.Node, vr VarReps) tree.Rep {
	in := n.Info()
	var r tree.Rep
	switch x := n.(type) {
	case *tree.Literal:
		// Literals are chameleons: deliver raw when raw is wanted and the
		// constant fits.
		r = literalIsRep(x, in.WantRep)

	case *tree.VarRef:
		r = vr.Rep(x.Var)

	case *tree.FunRef:
		r = tree.RepPOINTER

	case *tree.Setq:
		vRep := vr.Rep(x.Var)
		x.Value.Info().WantRep = vRep
		is(x.Value, vr)
		r = vRep

	case *tree.If:
		is(x.Test, vr)
		t := is(x.Then, vr)
		e := is(x.Else, vr)
		r = reconcileIf(in.WantRep, t, e)

	case *tree.Progn:
		r = tree.RepNONE
		for _, f := range x.Forms {
			r = is(f, vr)
		}
		if len(x.Forms) == 0 {
			r = tree.RepPOINTER
		}

	case *tree.Call:
		for _, a := range x.Args {
			is(a, vr)
		}
		switch fn := x.Fn.(type) {
		case *tree.FunRef:
			p := prim.Lookup(fn.Name)
			switch {
			case p != nil && p.ResRep != tree.RepUnknown:
				r = p.ResRep
			case p != nil && p.Jumpable && in.WantRep == tree.RepJUMP:
				r = tree.RepJUMP
			default:
				r = tree.RepPOINTER
			}
		case *tree.Lambda:
			// Let: propagate variable representations into argument
			// WANTREPs, then take the body's ISREP.
			for i, v := range fn.Required {
				if i < len(x.Args) {
					x.Args[i].Info().WantRep = vr.Rep(v)
					is(x.Args[i], vr)
				}
			}
			r = is(x.Fn, vr)
		default:
			is(x.Fn, vr)
			r = tree.RepPOINTER
		}

	case *tree.Lambda:
		for _, o := range x.Optional {
			is(o.Default, vr)
		}
		body := is(x.Body, vr)
		if x.Strategy == tree.StrategyOpen || x.Strategy == tree.StrategyJump {
			r = body
		} else {
			r = tree.RepPOINTER // a closure value
		}

	case *tree.ProgBody:
		for _, f := range x.Forms {
			is(f, vr)
		}
		r = tree.RepPOINTER

	case *tree.Return:
		is(x.Value, vr)
		r = tree.RepNONE

	case *tree.Go:
		r = tree.RepNONE

	case *tree.Catcher:
		is(x.Tag, vr)
		is(x.Body, vr)
		r = tree.RepPOINTER

	case *tree.Caseq:
		is(x.Key, vr)
		r = tree.RepUnknown
		for _, cl := range x.Clauses {
			cr := is(cl.Body, vr)
			r = mergeRep(r, cr)
		}
		if x.Default != nil {
			r = mergeRep(r, is(x.Default, vr))
		}
		if r == tree.RepUnknown {
			r = tree.RepPOINTER
		}
	}
	in.IsRep = r
	return r
}

func mergeRep(a, b tree.Rep) tree.Rep {
	if a == tree.RepUnknown {
		return b
	}
	if a == b {
		return a
	}
	return tree.RepPOINTER
}

// reconcileIf implements the paper's if-arm policy: if both arms agree,
// use that; if one arm already delivers the WANTREP and the other is
// convertible, use the WANTREP (so "when the conditional succeeds, no
// conversion … will be necessary; when the conditional fails, the result
// … will merely be dereferenced"); otherwise POINTER.
func reconcileIf(want, t, e tree.Rep) tree.Rep {
	if want == tree.RepNONE {
		return tree.RepNONE
	}
	if t == e {
		return t
	}
	if want.Raw() && (t == want || e == want) {
		other := t
		if t == want {
			other = e
		}
		if other == tree.RepPOINTER {
			return want
		}
	}
	return tree.RepPOINTER
}

// literalIsRep lets constants be emitted directly in raw form when the
// context wants it.
func literalIsRep(l *tree.Literal, want tree.Rep) tree.Rep {
	switch want {
	case tree.RepSWFLO:
		if isFlonumLit(l) {
			return tree.RepSWFLO
		}
	case tree.RepSWFIX:
		if isFixnumLit(l) {
			return tree.RepSWFIX
		}
	}
	return tree.RepPOINTER
}

func isFlonumLit(l *tree.Literal) bool { return flonumValue(l) }
