package rep

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/convert"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func prep(t *testing.T, src string) (*tree.Lambda, VarReps) {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatal(err)
	}
	lam := n.(*tree.Lambda)
	binding.AnnotateFunction(lam)
	vr := Annotate(lam, true)
	return lam, vr
}

func TestFloatOpWantsRawArgs(t *testing.T) {
	lam, _ := prep(t, "(lambda (x y) (+$f x y))")
	call := lam.Body.(*tree.Call)
	for _, a := range call.Args {
		if a.Info().WantRep != tree.RepSWFLO {
			t.Errorf("arg wantrep = %v", a.Info().WantRep)
		}
	}
	if call.Info().IsRep != tree.RepSWFLO {
		t.Errorf("call isrep = %v", call.Info().IsRep)
	}
	// Body of a standard function must deliver a pointer.
	if call.Info().WantRep != tree.RepPOINTER {
		t.Errorf("body wantrep = %v", call.Info().WantRep)
	}
}

func TestIfTestWantsJump(t *testing.T) {
	lam, _ := prep(t, "(lambda (p x y) (if p x y))")
	iff := lam.Body.(*tree.If)
	if iff.Test.Info().WantRep != tree.RepJUMP {
		t.Errorf("test wantrep = %v", iff.Test.Info().WantRep)
	}
}

func TestJumpablePrimDeliversJump(t *testing.T) {
	lam, _ := prep(t, "(lambda (x y) (if (<$f x y) 1 2))")
	iff := lam.Body.(*tree.If)
	if iff.Test.Info().IsRep != tree.RepJUMP {
		t.Errorf("comparison isrep = %v, want JUMP", iff.Test.Info().IsRep)
	}
}

// The paper's §6.2 example: (+$f (if p (sqrt$f q) (car r)) 3.0).
// The if's ISREP must be SWFLO: the sqrt arm needs no conversion, the car
// arm is merely dereferenced.
func TestIfArmReconciliation(t *testing.T) {
	lam, _ := prep(t, "(lambda (p q r) (+$f (if p (sqrt$f q) (car r)) 3.0))")
	add := lam.Body.(*tree.Call)
	iff := add.Args[0].(*tree.If)
	if iff.Info().WantRep != tree.RepSWFLO {
		t.Errorf("if wantrep = %v", iff.Info().WantRep)
	}
	if iff.Then.Info().IsRep != tree.RepSWFLO {
		t.Errorf("sqrt arm isrep = %v", iff.Then.Info().IsRep)
	}
	if iff.Else.Info().IsRep != tree.RepPOINTER {
		t.Errorf("car arm isrep = %v", iff.Else.Info().IsRep)
	}
	if iff.Info().IsRep != tree.RepSWFLO {
		t.Errorf("if isrep = %v, want SWFLO (the paper's example)", iff.Info().IsRep)
	}
}

func TestConsForcesPointer(t *testing.T) {
	// (cons (+& (*& a 3) b) 'foo): the + result must become a heap
	// object; the * result stays raw.
	lam, _ := prep(t, "(lambda (a b) (cons (+& (*& a 3) b) 'foo))")
	cons := lam.Body.(*tree.Call)
	add := cons.Args[0].(*tree.Call)
	if add.Info().WantRep != tree.RepPOINTER {
		t.Errorf("+ wantrep = %v (cons needs a pointer)", add.Info().WantRep)
	}
	if add.Info().IsRep != tree.RepSWFIX {
		t.Errorf("+ isrep = %v", add.Info().IsRep)
	}
	mul := add.Args[0].(*tree.Call)
	if mul.Info().WantRep != tree.RepSWFIX || mul.Info().IsRep != tree.RepSWFIX {
		t.Errorf("* reps = %v/%v (should stay raw)",
			mul.Info().WantRep, mul.Info().IsRep)
	}
}

func TestVariableRepUnifiesToFloat(t *testing.T) {
	// s is used only in float contexts and initialized by a float op:
	// it gets the SWFLO representation.
	lam, vr := prep(t, "(lambda (a b) (let ((s (*$f a b))) (+$f s 1.0)))")
	var sVar *tree.Var
	tree.Walk(lam, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			for _, v := range l.Params() {
				if v.Name.Name == "s" {
					sVar = v
				}
			}
		}
		return true
	})
	if sVar == nil {
		t.Fatal("no s")
	}
	if vr.Rep(sVar) != tree.RepSWFLO {
		t.Errorf("s rep = %v, want SWFLO", vr.Rep(sVar))
	}
}

func TestVariableRepDisagreementFallsBackToPointer(t *testing.T) {
	// The paper's testfn d: used by both frotz (pointer) and max$f
	// (float) → POINTER.
	lam, vr := prep(t, "(lambda (a b) (let ((d (+$f a b))) (frotz d (max$f d d))))")
	var dVar *tree.Var
	tree.Walk(lam, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			for _, v := range l.Params() {
				if v.Name.Name == "d" {
					dVar = v
				}
			}
		}
		return true
	})
	if vr.Rep(dVar) != tree.RepPOINTER {
		t.Errorf("d rep = %v, want POINTER", vr.Rep(dVar))
	}
}

func TestLiteralChameleon(t *testing.T) {
	lam, _ := prep(t, "(lambda (x) (+$f x 3.0))")
	call := lam.Body.(*tree.Call)
	lit := call.Args[1]
	if lit.Info().IsRep != tree.RepSWFLO {
		t.Errorf("float literal in SWFLO context: %v", lit.Info().IsRep)
	}
}

func TestDisabledForcesPointer(t *testing.T) {
	c := convert.New()
	n, _ := c.ConvertForm(mustRead("(lambda (x y) (+$f x y))"))
	lam := n.(*tree.Lambda)
	binding.AnnotateFunction(lam)
	Annotate(lam, false)
	call := lam.Body.(*tree.Call)
	if call.Info().IsRep != tree.RepPOINTER {
		t.Errorf("disabled rep analysis should force POINTER, got %v",
			call.Info().IsRep)
	}
}

func TestFixOpsWantFixnum(t *testing.T) {
	lam, _ := prep(t, "(lambda (i j) (+& (*& i 8) j))")
	add := lam.Body.(*tree.Call)
	if add.Args[0].Info().WantRep != tree.RepSWFIX {
		t.Errorf("fix arg wantrep = %v", add.Args[0].Info().WantRep)
	}
	if add.Info().IsRep != tree.RepSWFIX {
		t.Errorf("fix result isrep = %v", add.Info().IsRep)
	}
}

func TestProgBodyRepsPointer(t *testing.T) {
	lam, _ := prep(t, `(lambda (n)
	  (prog (i) (setq i 0)
	   loop (if (>= i n) (return i) nil)
	        (setq i (+ i 1)) (go loop)))`)
	// prog translates to a call of a lambda whose body is a progbody.
	call := lam.Body.(*tree.Call)
	pb := call.Fn.(*tree.Lambda).Body
	if pb.Info().IsRep != tree.RepPOINTER {
		t.Errorf("progbody isrep = %v", pb.Info().IsRep)
	}
}

func TestCatcherRepsPointer(t *testing.T) {
	lam, _ := prep(t, "(lambda (x) (catch 'k (+$f x 1.0)))")
	cat := lam.Body.(*tree.Catcher)
	if cat.Info().IsRep != tree.RepPOINTER {
		t.Errorf("catcher isrep = %v", cat.Info().IsRep)
	}
	// The body's float result must be coerced to a pointer.
	if cat.Body.Info().WantRep != tree.RepPOINTER {
		t.Errorf("catch body wantrep = %v", cat.Body.Info().WantRep)
	}
}

func TestCaseqMergesArmReps(t *testing.T) {
	lam, _ := prep(t, "(lambda (k x) (caseq k (1 (+$f x 1.0)) (t (car x))))")
	cq := lam.Body.(*tree.Caseq)
	if cq.Info().IsRep != tree.RepPOINTER {
		t.Errorf("mixed caseq isrep = %v", cq.Info().IsRep)
	}
}

func TestSetqRepFollowsVariable(t *testing.T) {
	lam, vr := prep(t, `(lambda (x)
	  (let ((acc 0.0))
	    (setq acc (+$f acc x))
	    (+$f acc 1.0)))`)
	var accVar *tree.Var
	tree.Walk(lam, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			for _, v := range l.Params() {
				if v.Name.Name == "acc" {
					accVar = v
				}
			}
		}
		return true
	})
	if accVar == nil {
		t.Fatal("no acc")
	}
	if vr.Rep(accVar) != tree.RepSWFLO {
		t.Errorf("acc rep = %v (setq value is SWFLO, refs want SWFLO)", vr.Rep(accVar))
	}
	var sq *tree.Setq
	tree.Walk(lam, func(n tree.Node) bool {
		if s, ok := n.(*tree.Setq); ok {
			sq = s
		}
		return true
	})
	if sq.Info().IsRep != tree.RepSWFLO {
		t.Errorf("setq isrep = %v", sq.Info().IsRep)
	}
}

func TestArefSubscriptsWantFixnum(t *testing.T) {
	lam, _ := prep(t, "(lambda (a i j) (aref$f a i j))")
	call := lam.Body.(*tree.Call)
	if call.Args[0].Info().WantRep != tree.RepPOINTER {
		t.Errorf("array wantrep = %v", call.Args[0].Info().WantRep)
	}
	for _, sub := range call.Args[1:] {
		if sub.Info().WantRep != tree.RepSWFIX {
			t.Errorf("subscript wantrep = %v", sub.Info().WantRep)
		}
	}
	lam2, _ := prep(t, "(lambda (a v i) (aset$f a v i))")
	call2 := lam2.Body.(*tree.Call)
	if call2.Args[1].Info().WantRep != tree.RepSWFLO {
		t.Errorf("stored value wantrep = %v", call2.Args[1].Info().WantRep)
	}
}

func TestClosedVarStaysPointer(t *testing.T) {
	// A captured variable must be a pointer even if every use is a float.
	lam, vr := prep(t, `(lambda (x)
	  (let ((s (+$f x 1.0)))
	    (frotz (lambda () (+$f s 2.0)))
	    (+$f s 3.0)))`)
	var sVar *tree.Var
	tree.Walk(lam, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			for _, v := range l.Params() {
				if v.Name.Name == "s" {
					sVar = v
				}
			}
		}
		return true
	})
	if sVar == nil {
		t.Fatal("no s")
	}
	if vr.Rep(sVar) != tree.RepPOINTER {
		t.Errorf("closed s rep = %v, must be POINTER", vr.Rep(sVar))
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
