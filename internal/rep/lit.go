package rep

import (
	"repro/internal/sexp"
	"repro/internal/tree"
)

func flonumValue(l *tree.Literal) bool {
	_, ok := l.Value.(sexp.Flonum)
	return ok
}

func isFixnumLit(l *tree.Literal) bool {
	_, ok := l.Value.(sexp.Fixnum)
	return ok
}
