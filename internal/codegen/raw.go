package codegen

import (
	"repro/internal/prim"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tn"
	"repro/internal/tree"
)

// noWantReg means the caller has no preference for a subscript register.
const noWantReg uint8 = 0

func fix0() sexp.Value { return sexp.Fixnum(0) }
func fix1() sexp.Value { return sexp.Fixnum(1) }

// emitRawBinary compiles a type-specific two-operand arithmetic call —
// the heart of the §6.1 code-quality story. The left operand may be a
// deferred indexed operand whose subscript lives in RTA, the right one in
// RTB; the destination TN prefers an RT register, so the common result is
// the paper's zero-MOV pattern:
//
//	MULT RTA,I,#A1 / ADD RTA,J / FMULT RTA, A(RTA), B(RTB) / …
func (f *fc) emitRawBinary(op s1.Op, a1, a2 tree.Node, argRep tree.Rep) (absOperand, error) {
	// The left operand may stay deferred only if emitting the right side
	// cannot disturb it: the right side must be a pure raw expression
	// (no stores, no full calls, no observable effects).
	materializeLeft := !pureRawTree(a2, argRep)
	left, err := f.rawOperand(a1, argRep, s1.RegRTA, materializeLeft)
	if err != nil {
		return noOperand, err
	}
	right, err := f.rawOperand(a2, argRep, s1.RegRTB, false)
	if err != nil {
		return noOperand, err
	}
	// Chains accumulate: when the left value is a dead temporary from a
	// nested operation, use the two-operand form (acc := acc op src) —
	// the paper's FMULT RTA,… / FADD RTA,C(RTB) sequence. The 2½-address
	// rule does not restrict two-operand forms.
	if left.tn != nil && isRawTemp(a1) {
		f.emit(op, left, right, noOperand, 0, "")
		return left, nil
	}
	res := f.newTN("arith")
	res.PreferRT = true
	f.emit(op, tnOp(res), left, right, 0, "")
	return tnOp(res), nil
}

// isRawTemp reports nodes whose emitted value is a single-use temporary
// (safe to clobber as an accumulator).
func isRawTemp(n tree.Node) bool {
	_, ok := n.(*tree.Call)
	return ok
}

// pureRawTree reports expressions whose emission produces only raw
// arithmetic and memory reads (no calls, no stores, no coercion traps
// taken on the happy path aside, no deferred-state clobbering beyond its
// own RT register).
func pureRawTree(n tree.Node, argRep tree.Rep) bool {
	switch x := n.(type) {
	case *tree.Literal:
		return true
	case *tree.VarRef:
		return true
	case *tree.Call:
		fr, ok := x.Fn.(*tree.FunRef)
		if !ok {
			return false
		}
		p := prim.Lookup(fr.Name)
		if p == nil {
			return false
		}
		if prim.BinaryFloatOp(fr.Name.Name) != "" || prim.BinaryFixOp(fr.Name.Name) != "" {
			for _, a := range x.Args {
				if !simpleRawLeaf(a) {
					return false
				}
			}
			return true
		}
		// A static aref$f with simple subscripts emits only subscript
		// arithmetic on its own RT register.
		if fr.Name.Name == "aref$f" && len(x.Args) >= 2 {
			if lit, ok := x.Args[0].(*tree.Literal); ok {
				if _, ok := lit.Value.(*sexp.FloatArray); ok {
					for _, s := range x.Args[1:] {
						if !simpleRawLeaf(s) {
							return false
						}
					}
					return true
				}
			}
		}
		return false
	}
	return false
}

// simpleRawLeaf: literals and variable references.
func simpleRawLeaf(n tree.Node) bool {
	switch n.(type) {
	case *tree.Literal, *tree.VarRef:
		return true
	}
	return false
}

// rawOperand produces an operand for one side of a raw binary operation.
// idxReg is the RT register this side may pin for a deferred subscript.
func (f *fc) rawOperand(n tree.Node, rep tree.Rep, idxReg uint8, materialize bool) (absOperand, error) {
	switch x := n.(type) {
	case *tree.Literal:
		if x.Info().IsRep == rep {
			return f.literalOperand(x, rep)
		}
	case *tree.VarRef:
		if !x.Var.Special && !x.Var.Closed && f.vr.Rep(x.Var) == rep {
			return f.varRead(x.Var)
		}
	case *tree.Call:
		if fr, ok := x.Fn.(*tree.FunRef); ok && fr.Name.Name == "aref$f" &&
			rep == tree.RepSWFLO && !materialize {
			if op, ok, err := f.tryStaticAref(x, idxReg); err != nil {
				return noOperand, err
			} else if ok {
				return op, nil
			}
		}
	}
	v, err := f.emitCoercedTo(n, rep)
	if err != nil {
		return noOperand, err
	}
	return f.stabilize(v)
}

// constArrayWord interns a compile-time-constant float array in the heap
// once.
func (f *fc) constArrayWord(fa *sexp.FloatArray) s1.Word {
	if f.c.constArrays == nil {
		f.c.constArrays = map[*sexp.FloatArray]s1.Word{}
	}
	if w, ok := f.c.constArrays[fa]; ok {
		return w
	}
	w := f.c.M.FromValue(fa)
	f.c.constArrays[fa] = w
	return w
}

// tryStaticAref emits the paper's static-array subscript pattern for
// (aref$f <constant-array> subs…): the subscript accumulates in the
// pinned RT register and the element is fetched through one indexed
// operand with an absolute base — no MOV instructions at all when the
// subscripts are variables or raw expressions.
func (f *fc) tryStaticAref(call *tree.Call, idxReg uint8) (absOperand, bool, error) {
	lit, ok := call.Args[0].(*tree.Literal)
	if !ok || idxReg == noWantReg {
		return noOperand, false, nil
	}
	fa, ok := lit.Value.(*sexp.FloatArray)
	if !ok {
		return noOperand, false, nil
	}
	subs := call.Args[1:]
	if len(subs) != len(fa.Dims) || len(subs) == 0 {
		return noOperand, false, nil
	}
	for _, s := range subs {
		if !pureRawTree(s, tree.RepSWFIX) {
			return noOperand, false, nil
		}
	}
	w := f.constArrayWord(fa)
	dataBase := int64(w.Bits) + 1 + int64(len(fa.Dims))

	idx := f.newTN("subscript")
	idx.Fixed = idxReg
	if err := f.emitSubscript(idx, idxReg, fa.Dims, subs); err != nil {
		return noOperand, false, err
	}
	idx.Touch(f.alloc.Now() + 1) // alive through the consuming instruction
	return conc(s1.Idx(s1.NoReg, dataBase, idxReg, 0)), true, nil
}

// emitSubscript computes the row-major index of subs into the pinned
// register: acc = s1; acc = acc*d_k + s_k.
func (f *fc) emitSubscript(idx *tn.TN, idxReg uint8, dims []int, subs []tree.Node) error {
	first, err := f.simpleFixOperand(subs[0])
	if err != nil {
		return err
	}
	if len(subs) == 1 {
		f.emit(s1.OpMOV, tnOp(idx), first, noOperand, 0, "subscript")
		return nil
	}
	// First step fuses the multiply: MULT RT, s1, #d2.
	f.emit(s1.OpMULT, tnOp(idx), first, conc(s1.ImmInt(int64(dims[1]))), 0,
		"prepare subscript")
	for k := 1; k < len(subs); k++ {
		sk, err := f.simpleFixOperand(subs[k])
		if err != nil {
			return err
		}
		f.emit(s1.OpADD, tnOp(idx), sk, noOperand, 0, "")
		if k+1 < len(subs) {
			f.emit(s1.OpMULT, tnOp(idx), conc(s1.ImmInt(int64(dims[k+1]))), noOperand, 0, "")
		}
	}
	return nil
}

// simpleFixOperand yields a raw-integer operand for a simple subscript.
func (f *fc) simpleFixOperand(n tree.Node) (absOperand, error) {
	switch x := n.(type) {
	case *tree.Literal:
		if fx, ok := x.Value.(sexp.Fixnum); ok {
			return conc(s1.ImmInt(int64(fx))), nil
		}
	case *tree.VarRef:
		if !x.Var.Special && !x.Var.Closed && f.vr.Rep(x.Var) == tree.RepSWFIX {
			return f.varRead(x.Var)
		}
	}
	v, err := f.emitCoercedTo(n, tree.RepSWFIX)
	if err != nil {
		return noOperand, err
	}
	return f.stabilize(v)
}

// emitArefF handles aref$f in value position.
func (f *fc) emitArefF(call *tree.Call) (absOperand, error) {
	if op, ok, err := f.tryStaticAref(call, s1.RegRTB); err != nil {
		return noOperand, err
	} else if ok {
		// Materialize: the deferred operand is only valid for one
		// consuming instruction, and here we are the consumer.
		res := f.newTN("aref")
		f.emit(s1.OpMOV, tnOp(res), op, noOperand, 0, "fetch element")
		return tnOp(res), nil
	}
	addr, err := f.emitDynamicElementAddr(call.Args[0], call.Args[1:])
	if err != nil {
		return noOperand, err
	}
	res := f.newTN("aref")
	f.emit(s1.OpMOV, tnOp(res), addr, noOperand, 0, "fetch element")
	return tnOp(res), nil
}

// emitAsetF compiles (aset$f array value subs…).
func (f *fc) emitAsetF(call *tree.Call) (absOperand, error) {
	if len(call.Args) < 3 {
		return noOperand, cgerrf("aset$f needs array, value and subscripts")
	}
	arr := call.Args[0]
	valNode := call.Args[1]
	subs := call.Args[2:]

	// Static path: compute the value first (it may use both RT
	// registers), then the subscript into RTA, then one store.
	if lit, ok := arr.(*tree.Literal); ok {
		if fa, ok := lit.Value.(*sexp.FloatArray); ok && len(subs) == len(fa.Dims) {
			staticOK := true
			for _, s := range subs {
				if !pureRawTree(s, tree.RepSWFIX) {
					staticOK = false
				}
			}
			if staticOK {
				val, err := f.emitCoercedTo(valNode, tree.RepSWFLO)
				if err != nil {
					return noOperand, err
				}
				if val, err = f.stabilize(val); err != nil {
					return noOperand, err
				}
				w := f.constArrayWord(fa)
				dataBase := int64(w.Bits) + 1 + int64(len(fa.Dims))
				idx := f.newTN("subscript")
				idx.Fixed = s1.RegRTB
				if err := f.emitSubscript(idx, s1.RegRTB, fa.Dims, subs); err != nil {
					return noOperand, err
				}
				idx.Touch(f.alloc.Now() + 1)
				f.emit(s1.OpMOV, conc(s1.Idx(s1.NoReg, dataBase, s1.RegRTB, 0)),
					val, noOperand, 0, "store element")
				return val, nil
			}
		}
	}
	val, err := f.emitCoercedTo(valNode, tree.RepSWFLO)
	if err != nil {
		return noOperand, err
	}
	if val, err = f.stabilize(val); err != nil {
		return noOperand, err
	}
	addr, err := f.emitDynamicElementAddr(arr, subs)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, addr, val, noOperand, 0, "store element")
	return val, nil
}

// emitDynamicElementAddr computes a float-array element operand for an
// array known only at run time, using the reserved scratch registers:
// R2 holds the array base, R3 the accumulated subscript. The returned
// operand must be consumed by the next instruction.
func (f *fc) emitDynamicElementAddr(arrNode tree.Node, subs []tree.Node) (absOperand, error) {
	arrv, err := f.emitCoercedTo(arrNode, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	if arrv, err = f.stabilize(arrv); err != nil {
		return noOperand, err
	}
	// Subscripts first (they may themselves use R2/R3 via coercions).
	subOps := make([]absOperand, len(subs))
	for i, s := range subs {
		v, err := f.emitCoercedTo(s, tree.RepSWFIX)
		if err != nil {
			return noOperand, err
		}
		if subOps[i], err = f.stabilize(v); err != nil {
			return noOperand, err
		}
	}
	// Type check.
	okL := f.label("farr")
	f.emit(s1.OpJTAG, arrv, conc(s1.Lbl(okL)), noOperand, int64(s1.TagFArray),
		"float-array check")
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), arrv, noOperand, 0, "")
	f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQWrongType, "")
	f.emitLabel(okL)
	f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), arrv, noOperand, 0, "array base")
	f.emit(s1.OpMOV, conc(s1.R(s1.RegR3)), subOps[0], noOperand, 0, "subscript")
	for k := 1; k < len(subs); k++ {
		// acc = acc*dims[k] + sub[k]; dims live in the header at base+k.
		f.emit(s1.OpMULT, conc(s1.R(s1.RegR3)), conc(s1.Mem(s1.RegR2, int64(1+k))),
			noOperand, 0, "scale by dimension")
		f.emit(s1.OpADD, conc(s1.R(s1.RegR3)), subOps[k], noOperand, 0, "")
	}
	return conc(s1.Idx(s1.RegR2, int64(1+len(subs)), s1.RegR3, 0)), nil
}
