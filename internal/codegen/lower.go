package codegen

import (
	"repro/internal/s1"
	"repro/internal/tn"
)

// lower converts abstract items to concrete machine items, replacing TN
// placeholders with their packed locations and repairing 2½-address-rule
// violations (which arise when a destination TN lost its preferred RT
// register — the repair MOV is exactly the data movement good packing
// avoids).
func (f *fc) lower() ([]s1.Item, error) {
	// Occupancy of the RT registers per tick, for safe repair scratch.
	type span struct{ start, end int }
	occupied := map[uint8][]span{}
	for _, t := range f.alloc.TNs {
		if t.Loc.Kind == tn.LocReg && (t.Loc.Reg == s1.RegRTA || t.Loc.Reg == s1.RegRTB) {
			occupied[t.Loc.Reg] = append(occupied[t.Loc.Reg], span{t.Start, t.End})
		}
	}
	rtFree := func(reg uint8, tick int) bool {
		for _, s := range occupied[reg] {
			if s.start <= tick && tick <= s.end {
				return false
			}
		}
		return true
	}

	lowerOp := func(o absOperand) (s1.Operand, error) {
		if o.tn == nil {
			return o.op, nil
		}
		switch o.tn.Loc.Kind {
		case tn.LocReg:
			return s1.R(o.tn.Loc.Reg), nil
		case tn.LocFrame:
			return s1.Mem(s1.RegFP, int64(o.tn.Loc.Slot)), nil
		}
		return s1.Operand{}, cgerrf("TN %s has no location", o.tn.Name)
	}

	var items []s1.Item
	for _, it := range f.code {
		if !it.present {
			items = append(items, s1.LabelItem(it.label))
			continue
		}
		a, err := lowerOp(it.a)
		if err != nil {
			return nil, err
		}
		b, err := lowerOp(it.b)
		if err != nil {
			return nil, err
		}
		c, err := lowerOp(it.cc)
		if err != nil {
			return nil, err
		}
		ins := s1.Instr{Op: it.op, A: a, B: b, C: c, TagArg: it.tagArg,
			Comment: it.comment}

		if isArith(it.op) && c.Mode != s1.MNone && !a.IsRT() && !b.IsRT() {
			// For commutative operations, swapping the sources may put an
			// RT register in the legal first-source position for free.
			if c.IsRT() && commutative[it.op] {
				ins.B, ins.C = c, b
				items = append(items, s1.InstrItem(ins))
				continue
			}
			// Repair: route the first source through a free RT register
			// not otherwise involved in this instruction.
			var rt uint8
			switch {
			case rtFree(s1.RegRTA, it.tick) && !usesReg(b, s1.RegRTA) && !usesReg(c, s1.RegRTA):
				rt = s1.RegRTA
			case rtFree(s1.RegRTB, it.tick) && !usesReg(b, s1.RegRTB) && !usesReg(c, s1.RegRTB):
				rt = s1.RegRTB
			default:
				// Both RT registers hold live values: save whichever one
				// the second source does not name.
				var save uint8 = s1.RegRTA
				if usesReg(c, s1.RegRTA) {
					save = s1.RegRTB
				}
				items = append(items,
					s1.InstrItem(s1.Instr{Op: s1.OpMOV, A: s1.R(s1.RegR2), B: s1.R(save),
						Comment: "save " + s1.RegName(save)}),
					s1.InstrItem(s1.Instr{Op: s1.OpMOV, A: s1.R(save), B: b}),
					s1.InstrItem(s1.Instr{Op: ins.Op, A: a, B: s1.R(save), C: c,
						Comment: ins.Comment}),
					s1.InstrItem(s1.Instr{Op: s1.OpMOV, A: s1.R(save), B: s1.R(s1.RegR2),
						Comment: "restore " + s1.RegName(save)}))
				continue
			}
			items = append(items,
				s1.InstrItem(s1.Instr{Op: s1.OpMOV, A: s1.R(rt), B: b,
					Comment: "route through RT (packing loss)"}),
				s1.InstrItem(s1.Instr{Op: ins.Op, A: a, B: s1.R(rt), C: c,
					Comment: ins.Comment}))
			continue
		}
		items = append(items, s1.InstrItem(ins))
	}
	return dropSelfMoves(items), nil
}

// dropSelfMoves removes register-to-self MOVs, which appear when packing
// folds a copy's source and destination TN into one register. The decoder
// would retire them as no-ops (decode.go), but eliding them here makes
// the copy free instead of a wasted dispatch and keeps filler out of the
// instruction pairs the superinstruction fuser tiles. Labels are separate
// items resolved after lowering, so removal cannot retarget a jump.
func dropSelfMoves(items []s1.Item) []s1.Item {
	out := items[:0]
	for _, it := range items {
		if it.Instr != nil && it.Instr.Op == s1.OpMOV &&
			it.Instr.A.Mode == s1.MReg && it.Instr.B.Mode == s1.MReg &&
			it.Instr.A.Base == it.Instr.B.Base {
			continue
		}
		out = append(out, it)
	}
	return out
}

// commutative lists operations whose sources may be exchanged.
var commutative = map[s1.Op]bool{
	s1.OpADD: true, s1.OpMULT: true,
	s1.OpFADD: true, s1.OpFMULT: true, s1.OpFMAX: true, s1.OpFMIN: true,
}

func isArith(op s1.Op) bool {
	switch op {
	case s1.OpADD, s1.OpSUB, s1.OpMULT, s1.OpDIV, s1.OpASH,
		s1.OpFADD, s1.OpFSUB, s1.OpFMULT, s1.OpFDIV, s1.OpFMAX, s1.OpFMIN:
		return true
	}
	return false
}

func usesReg(o s1.Operand, reg uint8) bool {
	switch o.Mode {
	case s1.MReg, s1.MMem:
		return o.Base == reg
	case s1.MIdx:
		return o.Base == reg || o.Index == reg
	}
	return false
}
