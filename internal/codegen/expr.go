package codegen

import (
	"fmt"
	"sort"

	"repro/internal/pdl"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// CgError is a code-generation failure.
type CgError struct{ Msg string }

func (e *CgError) Error() string { return "codegen: " + e.Msg }

func cgerrf(format string, args ...any) error {
	return &CgError{Msg: fmt.Sprintf(format, args...)}
}

// emitFunction produces the whole function: prologue, body in tail
// position, pending jump blocks, epilogue.
func (f *fc) emitFunction() error {
	if err := f.emitPrologue(); err != nil {
		return err
	}
	if err := f.emitTail(f.lam.Body); err != nil {
		return err
	}
	// Jump-strategy blocks are placed after the main body; their bodies
	// are in tail position (all their calls were).
	for len(f.pending) > 0 {
		lam := f.pending[0]
		f.pending = f.pending[1:]
		jb := f.jumpBlocks[lam]
		f.emitLabel(jb.label)
		jb.startTick = f.alloc.Now()
		if err := f.emitTail(lam.Body); err != nil {
			return err
		}
	}
	// Common epilogue.
	f.emitLabel(f.retLabel)
	if f.specialsBound > 0 {
		f.emit(s1.OpSPECUNBIND, noOperand, noOperand, noOperand,
			int64(f.specialsBound), "unbind dynamic parameters")
	}
	f.emit(s1.OpRET, noOperand, noOperand, noOperand, 0, "function exit")
	return nil
}

// emitPrologue handles argument-count checking, &optional dispatch (the
// Table 4 shape), &rest normalization, frame reservation, dynamic
// parameter binding and environment construction.
func (f *fc) emitPrologue() error {
	lam := f.lam
	f.retLabel = f.label("ret")
	nreq := len(lam.Required)
	nopt := len(lam.Optional)

	errL := f.label("wrongargs")
	bodyL := f.label("body")

	if lam.Rest != nil {
		// SQRestify checks the minimum and normalizes to fixed arity
		// nreq+nopt+1 … optionals with &rest take their defaults only
		// when fewer than nreq+nopt args arrive; normalize in two steps:
		// restify collects everything past the declared parameters.
		if nopt > 0 {
			return cgerrf("%s: &optional together with &rest is not supported by this compiler", f.name)
		}
		f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(int64(nreq))), noOperand,
			s1.SQRestify, "collect &rest arguments")
		ntot := nreq + 1
		for i, v := range lam.Params() {
			f.paramHome[v] = s1.Mem(s1.RegFP, int64(-4-ntot+i))
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(bodyL)), noOperand, noOperand, 0, "")
	} else if nopt == 0 {
		// Fixed arity: one check, direct frame addressing.
		f.emit(s1.OpJNE, conc(s1.R(s1.RegR3)), conc(s1.ImmInt(int64(nreq))),
			conc(s1.Lbl(errL)), 0, fmt.Sprintf("check %d arguments", nreq))
		for i, v := range lam.Required {
			f.paramHome[v] = s1.Mem(s1.RegFP, int64(-4-nreq+i))
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(bodyL)), noOperand, noOperand, 0, "")
	} else {
		// Optional parameters: dispatch on the number of arguments, with
		// code customized to each count ("it must be replicated in
		// general, because the initialization for an optional parameter
		// may be any LISP computation whatsoever").
		ntot := nreq + nopt
		params := lam.Params()
		// Normalized homes: reserved local slots FP+0..ntot-1.
		for i, v := range params {
			f.paramHome[v] = s1.Mem(s1.RegFP, int64(i))
		}
		f.nReserved = ntot
		// Reserve the local slots before running defaults.
		f.emit(s1.OpADD, conc(s1.R(s1.RegSP)), conc(s1.ImmInt(int64(ntot))),
			noOperand, 0, "reserve normalized parameter slots")
		var countLabels []string
		for k := nreq; k <= ntot; k++ {
			countLabels = append(countLabels, f.label(fmt.Sprintf("args%d", k)))
		}
		for k := nreq; k <= ntot; k++ {
			f.emit(s1.OpJEQ, conc(s1.R(s1.RegR3)), conc(s1.ImmInt(int64(k))),
				conc(s1.Lbl(countLabels[k-nreq])), 0,
				fmt.Sprintf("dispatch: %d arguments supplied", k))
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(errL)), noOperand, noOperand, 0,
			"wrong number of arguments")
		for k := nreq; k <= ntot; k++ {
			f.emitLabel(countLabels[k-nreq])
			// Copy the k supplied arguments into their slots. The k
			// arguments sit at FP-4-k … FP-5; note the slots were
			// reserved above, so SP-relative offsets shifted — we use FP,
			// which is stable.
			for i := 0; i < k; i++ {
				f.emit(s1.OpMOV, conc(s1.Mem(s1.RegFP, int64(i))),
					conc(s1.Mem(s1.RegFP, int64(-4-k+i))), noOperand, 0,
					fmt.Sprintf("parameter %s", params[i].Name.Name))
			}
			// Compute defaults for the missing ones, in order.
			for j := k; j < ntot; j++ {
				op := lam.Optional[j-nreq]
				v, err := f.emitCoercedTo(op.Default, tree.RepPOINTER)
				if err != nil {
					return err
				}
				f.emit(s1.OpMOV, conc(s1.Mem(s1.RegFP, int64(j))), v, noOperand, 0,
					fmt.Sprintf("default value for parameter %s", op.Var.Name.Name))
			}
			f.emit(s1.OpJMP, conc(s1.Lbl(bodyL)), noOperand, noOperand, 0, "")
		}
	}

	f.emitLabel(errL)
	f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQWrongArgs,
		"wrong number of arguments")
	f.emitLabel(bodyL)

	// Frame reservation for packed TNs; the operand is patched after
	// TN packing.
	f.frameSizePatch = len(f.code)
	f.emit(s1.OpADD, conc(s1.R(s1.RegSP)), conc(s1.ImmInt(0)), noOperand, 0,
		"reserve frame slots (patched)")

	// Heap environment for closed-over variables.
	if f.hasEnv {
		f.envTN = f.newTN("env")
		f.envTN.WantFrame = true
		f.emit(s1.OpENV, tnOp(f.envTN), conc(s1.R(s1.RegEP)), noOperand,
			int64(len(f.frame.envVars)), "allocate heap environment")
		// Move closed parameters into their env slots.
		for _, v := range f.lam.Params() {
			if !v.Closed {
				continue
			}
			_, slot, ok := f.frame.find(v)
			if !ok {
				return cgerrf("closed param %s missing from env", v)
			}
			f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), tnOp(f.envTN), noOperand, 0, "env base")
			f.emit(s1.OpMOV, conc(s1.Mem(s1.RegR2, int64(1+slot))),
				conc(f.paramHome[v]), noOperand, 0,
				fmt.Sprintf("heap-allocate parameter %s", v.Name.Name))
		}
	}

	// Dynamically bind special parameters.
	for _, v := range f.lam.Params() {
		if !v.Special {
			continue
		}
		sym := f.c.M.InternSym(v.Name.Name)
		f.emit(s1.OpSPECBIND, conc(f.paramHome[v]), noOperand, noOperand,
			int64(sym), fmt.Sprintf("bind special %s", v.Name.Name))
		f.specialsBound++
	}
	return nil
}

// finish packs TNs, patches the frame-size reservation and lowers the
// abstract code.
func (f *fc) finish() ([]s1.Item, int, int, error) {
	// Pdl-number data must survive as long as any pointer to it may be
	// used; extend those slots to the end of the function.
	for _, t := range f.pdlSlots {
		t.Touch(f.alloc.Now())
	}
	slots := f.alloc.Pack(f.nReserved)
	total := f.nReserved + slots
	f.code[f.frameSizePatch].b = conc(s1.ImmInt(int64(total)))
	items, err := f.lower()
	if err != nil {
		return nil, 0, 0, err
	}
	return items, f.lam.MinArgs(), f.lam.MaxArgs(), nil
}

// --- variable access ---

// varRead yields an operand holding the variable's value in its chosen
// representation. The result is stable (TN, param home) or freshly
// materialized (env slots, specials).
func (f *fc) varRead(v *tree.Var) (absOperand, error) {
	if v.Special {
		return f.specialRead(v)
	}
	if home, ok := f.paramHome[v]; ok && !v.Closed {
		return conc(home), nil
	}
	if t, ok := f.varTN[v]; ok {
		return tnOp(t), nil
	}
	if v.Closed {
		return f.envRead(v)
	}
	return noOperand, cgerrf("%s: variable %s has no location", f.name, v)
}

func (f *fc) envRead(v *tree.Var) (absOperand, error) {
	depth, slot, ok := f.frame.find(v)
	if !ok {
		return noOperand, cgerrf("%s: closed variable %s not in any env", f.name, v)
	}
	res := f.newTN("env:" + v.Name.Name)
	src, err := f.envSlotOperand(depth, slot, v.Name.Name)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, tnOp(res), src, noOperand, 0, "read "+v.Name.Name)
	return tnOp(res), nil
}

// envSlotOperand computes the operand for an environment slot, using R2
// as chase scratch. The operand must be consumed by the next emitted
// instruction.
func (f *fc) envSlotOperand(depth, slot int, name string) (absOperand, error) {
	if f.hasEnv && depth == 0 {
		// Our own environment object, held in a local.
		f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), tnOp(f.envTN), noOperand, 0, "env base")
		return conc(s1.Mem(s1.RegR2, int64(1+slot))), nil
	}
	// Otherwise the chain starts at EP, which corresponds to the frame at
	// depth 1 (our lexical parent context).
	hops := depth - 1
	if hops == 0 {
		return conc(s1.Mem(s1.RegEP, int64(1+slot))), nil
	}
	f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), conc(s1.Mem(s1.RegEP, 0)), noOperand, 0,
		"chase environment chain")
	for i := 1; i < hops; i++ {
		f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), conc(s1.Mem(s1.RegR2, 0)), noOperand, 0, "")
	}
	return conc(s1.Mem(s1.RegR2, int64(1+slot))), nil
}

// varWrite stores src (already in the variable's representation) into v.
// src must not itself be an env-slot operand.
func (f *fc) varWrite(v *tree.Var, src absOperand) error {
	if v.Special {
		return f.specialWrite(v, src)
	}
	if v.Closed {
		depth, slot, ok := f.frame.find(v)
		if !ok {
			return cgerrf("closed variable %s not in env", v)
		}
		dst, err := f.envSlotOperand(depth, slot, v.Name.Name)
		if err != nil {
			return err
		}
		f.emit(s1.OpMOV, dst, src, noOperand, 0, "store "+v.Name.Name)
		return nil
	}
	if home, ok := f.paramHome[v]; ok {
		f.emit(s1.OpMOV, conc(home), src, noOperand, 0, "store "+v.Name.Name)
		return nil
	}
	t, ok := f.varTN[v]
	if !ok {
		t = f.newTN(v.Name.Name)
		f.varTN[v] = t
	}
	f.emit(s1.OpMOV, tnOp(t), src, noOperand, 0, "store "+v.Name.Name)
	return nil
}

// --- specials ---

func (f *fc) symIndex(v *tree.Var) int64 {
	return int64(f.c.M.InternSym(v.Name.Name))
}

// maybeEmitSpecFinds emits cached deep-binding lookups when n is the
// placement point ("the smallest subtree that contains all the
// references").
func (f *fc) maybeEmitSpecFinds(n tree.Node) {
	if f.placements == nil {
		return
	}
	// Iterate in symbol-name order: several specials may share a placement
	// point, and the emitted lookup sequence (and its interned symbol
	// indices) must not depend on map iteration order.
	syms := make([]*sexp.Symbol, 0, len(f.placements))
	for sym := range f.placements {
		syms = append(syms, sym)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].Name < syms[j].Name })
	for _, sym := range syms {
		if f.placements[sym] != n || f.specCache[sym] != nil {
			continue
		}
		idx := int64(f.c.M.InternSym(sym.Name))
		cache := f.newTN("cache:" + sym.Name)
		cache.WantFrame = true
		f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(idx)), noOperand,
			s1.SQSpecFind, "look up special "+sym.Name)
		f.emit(s1.OpMOV, tnOp(cache), conc(s1.R(s1.RegA)), noOperand, 0,
			"cache binding pointer")
		f.specCache[sym] = cache
	}
}

func (f *fc) specialRead(v *tree.Var) (absOperand, error) {
	res := f.newTN("spec:" + v.Name.Name)
	if cache := f.specCache[v.Name]; cache != nil {
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), tnOp(cache), noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQSpecRead,
			"read special "+v.Name.Name+" (cached)")
	} else {
		f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(f.symIndex(v))), noOperand,
			s1.SQSpecReadSym, "read special "+v.Name.Name)
	}
	f.emit(s1.OpMOV, tnOp(res), conc(s1.R(s1.RegA)), noOperand, 0, "")
	return tnOp(res), nil
}

func (f *fc) specialWrite(v *tree.Var, src absOperand) error {
	if cache := f.specCache[v.Name]; cache != nil {
		f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), src, noOperand, 0, "")
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), tnOp(cache), noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQSpecWrite,
			"write special "+v.Name.Name+" (cached)")
		return nil
	}
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), src, noOperand, 0, "")
	f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(f.symIndex(v))), noOperand,
		s1.SQSpecWriteSym, "write special "+v.Name.Name)
	return nil
}

// --- literals ---

func (f *fc) literalOperand(lit *tree.Literal, r tree.Rep) (absOperand, error) {
	switch r {
	case tree.RepSWFLO:
		fl, ok := lit.Value.(sexp.Flonum)
		if !ok {
			return noOperand, cgerrf("literal %s is not a flonum", sexp.Print(lit.Value))
		}
		return conc(s1.Imm(s1.RawFloat(float64(fl)))), nil
	case tree.RepSWFIX:
		fx, ok := lit.Value.(sexp.Fixnum)
		if !ok {
			return noOperand, cgerrf("literal %s is not a fixnum", sexp.Print(lit.Value))
		}
		return conc(s1.Imm(s1.RawInt(int64(fx)))), nil
	default:
		return conc(s1.Imm(f.c.M.FromValue(lit.Value))), nil
	}
}

// --- coercions (the WANTTN/ISTN machinery of §6.2) ---

// emitCoercedTo evaluates n and delivers its value in representation
// want.
func (f *fc) emitCoercedTo(n tree.Node, want tree.Rep) (absOperand, error) {
	v, err := f.emitNode(n)
	if err != nil {
		return noOperand, err
	}
	return f.coerce(n, v, effectiveRep(n.Info().IsRep), want)
}

// effectiveRep maps the bookkeeping representations to what emission
// actually delivers: JUMP-rep nodes materialize to T/NIL pointers in
// value position, and unannotated nodes are pointers.
func effectiveRep(r tree.Rep) tree.Rep {
	if r == tree.RepJUMP || r == tree.RepUnknown || r == tree.RepNONE {
		return tree.RepPOINTER
	}
	return r
}

// emitCoerced delivers n in its annotated WANTREP.
func (f *fc) emitCoerced(n tree.Node) (absOperand, error) {
	w := n.Info().WantRep
	if w == tree.RepNONE || w == tree.RepUnknown || w == tree.RepJUMP {
		w = tree.RepPOINTER
	}
	return f.emitCoercedTo(n, w)
}

// coerce converts a value between representations, emitting the
// conversion code. This is where pdl numbers happen: a raw numeric value
// that must become a pointer is MOVP'd into a stack scratch slot when the
// pdl analysis authorized it, and heap-allocated otherwise.
func (f *fc) coerce(n tree.Node, v absOperand, from, to tree.Rep) (absOperand, error) {
	if from == to || to == tree.RepNONE || to == tree.RepUnknown {
		return v, nil
	}
	switch {
	case from == tree.RepPOINTER && to == tree.RepSWFLO:
		return f.derefNumber(v, s1.TagFlonum, true)
	case from == tree.RepPOINTER && to == tree.RepSWFIX:
		return f.derefNumber(v, s1.TagFixnum, false)
	case from == tree.RepSWFLO && to == tree.RepPOINTER:
		if f.c.Opts.PdlNumbers && pdl.WantsPdlSlot(n) {
			slot := f.newTN("pdl")
			slot.WantFrame = true
			f.pdlSlots = append(f.pdlSlots, slot)
			res := f.newTN("pdlptr")
			f.emit(s1.OpMOV, tnOp(slot), v, noOperand, 0,
				"install value for PDL-allocated number")
			f.emit(s1.OpMOVP, tnOp(res), tnOp(slot), noOperand,
				int64(s1.TagFlonum), "pointer to PDL slot")
			return tnOp(res), nil
		}
		res := f.newTN("boxed")
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), v, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQFlonumCons,
			"heap-allocate flonum")
		f.emit(s1.OpMOV, tnOp(res), conc(s1.R(s1.RegA)), noOperand, 0, "")
		return tnOp(res), nil
	case from == tree.RepSWFIX && to == tree.RepPOINTER:
		// A fixnum pointer is an immediate: retag the raw bits.
		reg, err := f.ensureReg(v)
		if err != nil {
			return noOperand, err
		}
		res := f.newTN("fixptr")
		f.emit(s1.OpMOVP, tnOp(res), conc(s1.Idx(reg, 0, s1.NoReg, 0)), noOperand,
			int64(s1.TagFixnum), "make immediate fixnum")
		return tnOp(res), nil
	case from == tree.RepSWFLO && to == tree.RepSWFIX:
		res := f.newTN("fixed")
		f.emit(s1.OpFIX, tnOp(res), v, noOperand, 0, "")
		return tnOp(res), nil
	case from == tree.RepSWFIX && to == tree.RepSWFLO:
		res := f.newTN("floated")
		f.emit(s1.OpFLT, tnOp(res), v, noOperand, 0, "")
		return tnOp(res), nil
	}
	return noOperand, cgerrf("cannot coerce %v to %v", from, to)
}

// derefNumber converts POINTER→raw with a run-time type check.
func (f *fc) derefNumber(v absOperand, tag s1.Tag, deref bool) (absOperand, error) {
	okL := f.label("typeok")
	f.emit(s1.OpJTAG, v, conc(s1.Lbl(okL)), noOperand, int64(tag),
		"type check")
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), v, noOperand, 0, "")
	f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQWrongType, "")
	f.emitLabel(okL)
	res := f.newTN("raw")
	if deref {
		reg, err := f.ensureReg(v)
		if err != nil {
			return noOperand, err
		}
		f.emit(s1.OpMOV, tnOp(res), conc(s1.Mem(reg, 0)), noOperand, 0,
			"dereference")
	} else {
		// Fixnum: the payload bits are the value.
		f.emit(s1.OpMOV, tnOp(res), v, noOperand, 0, "untag fixnum")
	}
	return tnOp(res), nil
}

// ensureReg materializes an operand's value into a register usable as an
// address base, returning the register. Uses R2 (reserved scratch) for
// non-register operands; the result must be consumed before the next
// ensureReg/env access.
func (f *fc) ensureReg(v absOperand) (uint8, error) {
	if v.tn == nil && v.op.Mode == s1.MReg {
		return v.op.Base, nil
	}
	f.emit(s1.OpMOV, conc(s1.R(s1.RegR2)), v, noOperand, 0, "to address register")
	return s1.RegR2, nil
}
