package codegen_test

import (
	"regexp"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/sexp"
)

// newSys builds a system with the given codegen options.
func newSys(t *testing.T, src string, opts *codegen.Options, consts map[string]sexp.Value) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Options{Codegen: opts, Constants: consts})
	if err := sys.LoadString(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	return sys
}

// The §7 testfn, end to end: optional-argument dispatch, pdl slots, the
// FSIN instruction, and a heap cons only for the returned value — the
// Table 4 shape.
func TestTestfnTable4Shape(t *testing.T) {
	src := `
(defun frotz (a b c) nil)
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))`
	sys := newSys(t, src, nil, nil)
	lst, err := sys.Listing("testfn")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"FSIN",                    // the hardware sine (cycles)
		"MOVP FLONUM",             // pdl-number creation
		"install value for PDL",   // the Table 4 comment
		"*:SQ-SINGLE-FLONUM-CONS", // heap cons for the returned value
		"dispatch: 1 arguments",   // the argument-count dispatch
		"dispatch: 2 arguments",   //
		"dispatch: 3 arguments",   //
		"default value for parameter b",
		"default value for parameter c",
		"FADD", "FMULT", "FMAX",
	} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
	// Behavior: all three argument counts.
	v, err := sys.Call("testfn", sexp.Flonum(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// q = sin(0.5*3.0*0.5) = sin(0.75)
	f, _ := sexp.ToFloat(v)
	if f < 0.6816 || f > 0.6817 {
		t.Errorf("testfn(0.5) = %v", f)
	}
	// Exactly one heap flonum beyond the argument: the returned q; d and
	// e are pdl numbers.
	sys.ResetStats()
	if _, err := sys.Call("testfn", sexp.Flonum(0.5)); err != nil {
		t.Fatal(err)
	}
	if got := sys.Stats().FlonumAllocs; got > 2 {
		t.Errorf("flonum allocs = %d, want <= 2 (argument + result)", got)
	}
}

// matrixSrc is the §6.1 example: Z[I,K] := A[I,J]*B[J,K] + C[I,K] + e,
// swept over a whole matrix with raw integer loop variables.
const matrixSrc = `
(defun kernel ()
  (let ((n 4))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))`

func matrixConsts() map[string]sexp.Value {
	mk := func() *sexp.FloatArray {
		fa := sexp.NewFloatArray([]int{4, 4})
		for i := range fa.Data {
			fa.Data[i] = float64(i) * 0.5
		}
		return fa
	}
	return map[string]sexp.Value{
		"aarr": mk(), "barr": mk(), "carr": mk(),
		"zarr":   sexp.NewFloatArray([]int{4, 4}),
		"econst": sexp.Flonum(1.5),
	}
}

func TestMatrixKernelCorrect(t *testing.T) {
	consts := matrixConsts()
	sys := newSys(t, matrixSrc, nil, consts)
	if _, err := sys.Call("kernel"); err != nil {
		lst, _ := sys.Listing("kernel")
		t.Fatalf("kernel: %v\n%s", err, lst)
	}
	// Writes land in the machine's copy of the constant array.
	z, err := sys.ReadConstArray(consts["zarr"].(*sexp.FloatArray))
	if err != nil {
		t.Fatal(err)
	}
	a := consts["aarr"].(*sexp.FloatArray)
	// The loop nest overwrites Z[i,k] per j; the last write is j=3:
	// Z[1,2] = A[1,3]*B[3,2] + C[1,2] + 1.5.
	i, k := 1, 2
	j := 3
	want := a.Data[i*4+j]*a.Data[j*4+k] + a.Data[i*4+k] + 1.5
	if got := z.Data[i*4+k]; got != want {
		t.Errorf("Z[1,2] = %v, want %v", got, want)
	}
}

// TestMatrixMOVCount is E4's metric: with TNBIND the inner statement
// needs essentially no MOV instructions (the RT-register dance); the
// naive allocator needs many.
func TestMatrixMOVCount(t *testing.T) {
	good := newSys(t, matrixSrc, nil, matrixConsts())
	goodMOVs, err := good.StaticMOVs("kernel")
	if err != nil {
		t.Fatal(err)
	}
	naiveOpts := codegen.DefaultOptions()
	naiveOpts.UseTN = false
	naive := newSys(t, matrixSrc, &naiveOpts, matrixConsts())
	naiveMOVs, err := naive.StaticMOVs("kernel")
	if err != nil {
		t.Fatal(err)
	}
	if goodMOVs >= naiveMOVs {
		lst, _ := good.Listing("kernel")
		t.Errorf("TNBIND should reduce MOVs: good=%d naive=%d\n%s",
			goodMOVs, naiveMOVs, lst)
	}
	// The listing shows the paper's shape: subscripts accumulated in RT
	// registers and consumed by indexed operands.
	lst, _ := good.Listing("kernel")
	if !strings.Contains(lst, "MULT RT") {
		t.Errorf("subscript arithmetic should target RT registers:\n%s", lst)
	}
	if !strings.Contains(lst, "(IDX") {
		t.Errorf("array elements should use indexed addressing:\n%s", lst)
	}
	// E4's headline: the assignment statement itself — first subscript
	// MULT through the store — contains NO MOV instructions: "each
	// instruction performs useful arithmetic".
	lines := strings.Split(lst, "\n")
	first, last := -1, -1
	for n, l := range lines {
		if strings.Contains(l, "MULT RT") && first < 0 {
			first = n
		}
		if strings.Contains(l, "store element") && last < 0 {
			last = n
		}
	}
	if first < 0 || last < 0 || last < first {
		t.Fatalf("statement region not found:\n%s", lst)
	}
	movs := 0
	for _, l := range lines[first : last+1] {
		if strings.Contains(l, " MOV ") && !strings.Contains(l, "store element") {
			movs++
		}
	}
	if movs != 0 {
		t.Errorf("the §6.1 statement should need zero MOVs, got %d:\n%s",
			movs, strings.Join(lines[first:last+1], "\n"))
	}
	// Dynamic execution: both produce identical results and cycles favor
	// the packed version.
	good.ResetStats()
	if _, err := good.Call("kernel"); err != nil {
		t.Fatal(err)
	}
	naive.ResetStats()
	if _, err := naive.Call("kernel"); err != nil {
		t.Fatal(err)
	}
	if good.Stats().Cycles >= naive.Stats().Cycles {
		t.Errorf("TNBIND should save cycles: %d vs %d",
			good.Stats().Cycles, naive.Stats().Cycles)
	}
}

// The single §6.1 statement in isolation. Our version receives its
// subscripts as boxed arguments (the paper's context had them raw
// already), so the function derefs them first; the statement itself then
// compiles to the paper's indexed-operand form and runs correctly.
func TestMatrixStatementShape(t *testing.T) {
	src := `
(defun stmt (fi fj fk e)
  (let ((i (fix fi)) (j (fix fj)) (k (fix fk)))
    (aset$f zarr
            (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                      (aref$f carr i k))
                 e)
            i k)))`
	consts := matrixConsts()
	sys := newSys(t, src, nil, consts)
	lst, err := sys.Listing("stmt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lst, "(IDX") {
		t.Errorf("expected indexed addressing:\n%s", lst)
	}
	// Execute it and verify the value against a host computation.
	v, err := sys.Call("stmt", sexp.Flonum(1), sexp.Flonum(2), sexp.Flonum(3),
		sexp.Flonum(0.25))
	if err != nil {
		t.Fatal(err)
	}
	a := consts["aarr"].(*sexp.FloatArray)
	want := a.Data[1*4+2]*a.Data[2*4+3] + a.Data[1*4+3] + 0.25
	f, _ := sexp.ToFloat(v)
	if f != want {
		t.Errorf("stmt = %v, want %v", f, want)
	}
}

// Boolean short-circuiting (E2): the compiled conditional network
// contains no closure construction and no and/or runtime support — just
// jumps.
func TestShortCircuitCompilesToJumps(t *testing.T) {
	src := `
(defun frotz (x) x)
(defun gronk (x) x)
(defun choose (a b c x)
  (if (and a (or b c)) (frotz x) (gronk x)))`
	sys := newSys(t, src, nil, nil)
	lst, err := sys.Listing("choose")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lst, "CLOSE") {
		t.Errorf("short-circuit must not construct closures:\n%s", lst)
	}
	if strings.Contains(lst, "ENV") {
		t.Errorf("short-circuit must not allocate environments:\n%s", lst)
	}
	// Correctness across the truth table.
	cases := []struct {
		a, b, c sexp.Value
		want    string
	}{
		{sexp.T, sexp.T, sexp.Nil, "7"},
		{sexp.T, sexp.Nil, sexp.T, "7"},
		{sexp.T, sexp.Nil, sexp.Nil, "8"},
		{sexp.Nil, sexp.T, sexp.T, "8"},
	}
	for _, c := range cases {
		v, err := sys.Call("choose", c.a, c.b, c.c, sexp.Fixnum(7))
		if err != nil {
			t.Fatal(err)
		}
		got := sexp.Print(v)
		if c.want == "8" {
			got = sexp.Print(v) // gronk(x)=x too; distinguish via x
		}
		_ = got
	}
	// Distinguish arms with different functions.
	src2 := `
(defun choose2 (a b c)
  (if (and a (or b c)) 'one 'two))`
	sys2 := newSys(t, src2, nil, nil)
	for _, c := range cases {
		want := "one"
		if c.want == "8" {
			want = "two"
		}
		v, err := sys2.Call("choose2", c.a, c.b, c.c)
		if err != nil {
			t.Fatal(err)
		}
		if sexp.Print(v) != want {
			t.Errorf("choose2(%s %s %s) = %s want %s",
				sexp.Print(c.a), sexp.Print(c.b), sexp.Print(c.c),
				sexp.Print(v), want)
		}
	}
}

// Jump-strategy lambdas: thunks with several tail call sites become
// labeled blocks with parameter-passing gotos.
func TestJumpBlocks(t *testing.T) {
	src := `
(defun expensive1 (x) (cons x 1))
(defun expensive2 (x) (cons x 2))
(defun pick (a b c x)
  (if (and a (or b c)) (expensive1 x) (expensive2 x)))`
	sys := newSys(t, src, nil, nil)
	lst, err := sys.Listing("pick")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lst, "parameter-passing goto") &&
		!strings.Contains(lst, "TCALL") {
		t.Errorf("expected jump-block calls or tail calls:\n%s", lst)
	}
	if strings.Contains(lst, "CLOSE") {
		t.Errorf("no closures expected:\n%s", lst)
	}
	v, err := sys.Call("pick", sexp.T, sexp.Nil, sexp.T, sexp.Fixnum(5))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "(5 . 1)" {
		t.Errorf("pick = %s", sexp.Print(v))
	}
}

// Special-variable caching (E9): with caching, a loop reading a special
// does one deep search; without, one per read.
func TestSpecialCachingReducesSearches(t *testing.T) {
	src := `
(defvar *s* 2)
(defun suminto (n)
  (let ((acc 0))
    (dotimes (i n acc)
      (setq acc (+ acc *s*)))))`
	cached := newSys(t, src, nil, nil)
	cached.ResetStats()
	if _, err := cached.Call("suminto", sexp.Fixnum(100)); err != nil {
		t.Fatal(err)
	}
	cachedLookups := cached.Stats().SpecialLookups

	opts := codegen.DefaultOptions()
	opts.SpecialCaching = false
	uncached := newSys(t, src, &opts, nil)
	uncached.ResetStats()
	if _, err := uncached.Call("suminto", sexp.Fixnum(100)); err != nil {
		t.Fatal(err)
	}
	uncachedLookups := uncached.Stats().SpecialLookups
	if cachedLookups >= uncachedLookups {
		t.Errorf("caching should reduce lookups: %d vs %d",
			cachedLookups, uncachedLookups)
	}
	if cachedLookups > 3 {
		t.Errorf("cached lookups = %d, want O(1)", cachedLookups)
	}
	// Same answer.
	v1, _ := cached.Call("suminto", sexp.Fixnum(10))
	v2, _ := uncached.Call("suminto", sexp.Fixnum(10))
	if !sexp.Equal(v1, v2) {
		t.Errorf("results differ: %s vs %s", sexp.Print(v1), sexp.Print(v2))
	}
}

// The optimizer toggle matters: constant folding visible in listings.
func TestOptimizeToggle(t *testing.T) {
	src := `(defun f () (+ 1 2))`
	on := newSys(t, src, nil, nil)
	lstOn, _ := on.Listing("f")
	opts := codegen.DefaultOptions()
	opts.Optimize = false
	off := newSys(t, src, &opts, nil)
	lstOff, _ := off.Listing("f")
	if strings.Contains(lstOn, "SQ-ADD") {
		t.Errorf("optimized f should fold (+ 1 2):\n%s", lstOn)
	}
	if !strings.Contains(lstOff, "SQ-ADD") {
		t.Errorf("unoptimized f should call SQ-ADD:\n%s", lstOff)
	}
	v1, _ := on.Call("f")
	v2, _ := off.Call("f")
	if sexp.Print(v1) != "3" || sexp.Print(v2) != "3" {
		t.Error("both must return 3")
	}
}

func TestDeepEnvChain(t *testing.T) {
	// Three-deep lexical nesting through closures.
	src := `
(defun mk (a)
  (lambda (b)
    (lambda (c)
      (lambda (d) (list a b c d)))))
(defun use (a b c d)
  (funcall (funcall (funcall (mk a) b) c) d))`
	sys := newSys(t, src, nil, nil)
	v, err := sys.Call("use", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3), sexp.Fixnum(4))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "(1 2 3 4)" {
		t.Errorf("use = %s", sexp.Print(v))
	}
}

func TestSetqClosedVariable(t *testing.T) {
	src := `
(defun mk ()
  (let ((n 0))
    (cons (lambda () (setq n (+ n 1)))
          (lambda () n))))
(defun use ()
  (let ((p (mk)))
    (funcall (car p))
    (funcall (car p))
    (funcall (cdr p))))`
	sys := newSys(t, src, nil, nil)
	v, err := sys.Call("use")
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "2" {
		t.Errorf("shared mutable capture = %s", sexp.Print(v))
	}
}

// TestNoSelfMoves sweeps a representative corpus and checks that
// lowering's dropSelfMoves filter left no register-to-self MOV in any
// listing: packing can fold a copy's source and destination into one
// register, and such copies should be elided at compile time rather than
// retired as run-time no-ops.
func TestNoSelfMoves(t *testing.T) {
	src := matrixSrc + `
(defun poly (x) (let ((y x)) (let ((z y)) (* z (+ y x)))))
(defun reuse (a b) (let ((t1 (+ a b))) (let ((t2 t1)) (- t2 b))))`
	sys := newSys(t, src, nil, matrixConsts())
	re := regexp.MustCompile(`\bMOV (\w+) (\w+)`)
	for name := range sys.Defs {
		lst, err := sys.Listing(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(lst, "\n") {
			if m := re.FindStringSubmatch(line); m != nil && m[1] == m[2] {
				t.Errorf("%s: register-to-self MOV survived lowering: %s", name, line)
			}
		}
	}
}
