// Package codegen is the code-generation phase of §4.5: a single pass
// over the decorated tree, emitting parenthesized S-1 assembly. It
// consumes every earlier annotation — binding strategies, representation
// (WANTREP/ISREP), pdl-number authorizations, and TNBIND locations — and
// produces code in the Table 4 style: argument-count dispatch prologues,
// pdl-slot MOVPs, tail calls as jumps, and the RT-register dance for
// arithmetic.
package codegen

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/binding"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pdl"
	"repro/internal/rep"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tn"
	"repro/internal/tree"
)

// Options select which machine-dependent phases run — the ablation knobs
// of EXPERIMENTS.md.
type Options struct {
	// UseTN enables TNBIND register packing; off, every quantity lives in
	// a frame slot (the E4 baseline).
	UseTN bool
	// RepAnalysis enables representation analysis (E5); off, everything
	// is a pointer.
	RepAnalysis bool
	// PdlNumbers enables stack allocation of numbers (E6).
	PdlNumbers bool
	// SpecialCaching enables the per-subtree special lookup cache (E9).
	SpecialCaching bool
	// Optimize runs the source-level optimizer before compilation.
	Optimize bool
	// CSE additionally runs common-subexpression elimination — the phase
	// the paper designed but left unimplemented; off by default for
	// fidelity.
	CSE bool
	// OptimizerLog receives the transformation transcript.
	OptimizerLog interface{ Write(p []byte) (int, error) }
	// Fault, if non-nil, is the fault-injection plan consulted at every
	// middle-end phase boundary (see internal/diag): injected panics and
	// errors exercise the per-unit recovery paths. Nil costs one pointer
	// check per phase. Not part of the compile-cache key — injected
	// faults abort the unit before anything is stored.
	Fault *diag.Plan
	// OptWatchdog, when >0, bounds the wall-clock time of each unit's
	// optimizer fixpoint; expiry fails the unit with an error instead of
	// hanging the load.
	OptWatchdog time.Duration
}

// DefaultOptions enables every phase.
func DefaultOptions() Options {
	return Options{UseTN: true, RepAnalysis: true, PdlNumbers: true,
		SpecialCaching: true, Optimize: true}
}

// Compiler compiles functions into a machine.
type Compiler struct {
	M    *s1.Machine
	Opts Options

	// constArrays interns compile-time-constant float arrays.
	constArrays map[*sexp.FloatArray]s1.Word
	// gen is a counter for internal function/label names.
	gen int
}

// New returns a compiler targeting m.
func New(m *s1.Machine, opts Options) *Compiler {
	return &Compiler{M: m, Opts: opts}
}

// Prepared is the result of the machine-independent middle end for one
// function: the optimized, fully annotated tree, ready for emission,
// plus the per-unit observability payloads (the buffered optimizer
// transcript and the structured rule events).
type Prepared struct {
	Lam *tree.Lambda
	vr  rep.VarReps
	// transcript buffers the §5 optimizer log for this unit; Emit
	// flushes it to Opts.OptimizerLog, so parallel Prepares never
	// interleave transcript lines and flush order is emission (source)
	// order — byte-identical to a sequential compile.
	transcript *bytes.Buffer
	rules      []obs.RuleEvent
}

// Rules returns the optimizer rule events fired while preparing this
// function (empty unless an obs task was supplied).
func (p *Prepared) Rules() []obs.RuleEvent { return p.rules }

// Prepare runs the middle end — source-level optimizer, optional CSE,
// analysis, binding, representation and pdl annotation — for one
// function. It reads no mutable compiler or machine state (each call owns
// a fresh optimizer and compile-time interpreter), so distinct functions
// may be Prepared concurrently; only Emit must be serialized.
func (c *Compiler) Prepare(name string, lam *tree.Lambda) (*Prepared, error) {
	return c.PrepareTask(name, lam, nil)
}

// PrepareTask is Prepare with observability: each middle-end phase
// records a span on the task (nil task = no tracing), and optimizer
// rule fires are collected as structured events on the Prepared.
func (c *Compiler) PrepareTask(name string, lam *tree.Lambda, task *obs.Task) (*Prepared, error) {
	p := &Prepared{}
	if c.Opts.Optimize {
		if err := c.Opts.Fault.Fire("optimize", name); err != nil {
			return nil, err
		}
		oo := opt.DefaultOptions()
		oo.Watchdog = c.Opts.OptWatchdog
		if c.Opts.OptimizerLog != nil {
			p.transcript = &bytes.Buffer{}
			oo.Log = p.transcript
		}
		if task.Live() {
			oo.OnRule = func(rule, before, after string) {
				p.rules = append(p.rules, obs.RuleEvent{
					Unit: name, Rule: rule, Before: before, After: after,
					Ts: task.Since(), Worker: task.Worker(),
				})
			}
		}
		sp := task.Start("optimize")
		o := opt.New(oo, nil)
		n := o.Optimize(lam)
		if o.TimedOut() {
			return nil, fmt.Errorf("codegen: optimizer watchdog (%v) expired on %s before fixpoint",
				c.Opts.OptWatchdog, name)
		}
		var ok bool
		if lam, ok = n.(*tree.Lambda); !ok {
			return nil, fmt.Errorf("codegen: optimizer folded %s away to %s", name, tree.Show(n))
		}
		if err := tree.Validate(lam); err != nil {
			return nil, fmt.Errorf("codegen: optimizer broke %s: %w", name, err)
		}
		sp.SetNodes(tree.CountNodes(lam))
		sp.End()
		if c.Opts.CSE {
			if err := c.Opts.Fault.Fire("cse", name); err != nil {
				return nil, err
			}
			sp := task.Start("cse")
			opt.EliminateCommonSubexpressions(lam)
			if err := tree.Validate(lam); err != nil {
				return nil, fmt.Errorf("codegen: CSE broke %s: %w", name, err)
			}
			sp.SetNodes(tree.CountNodes(lam))
			sp.End()
		}
	}
	if err := c.Opts.Fault.Fire("analysis", name); err != nil {
		return nil, err
	}
	sp := task.Start("analysis")
	analysis.Analyze(lam)
	sp.End()
	if err := c.Opts.Fault.Fire("binding", name); err != nil {
		return nil, err
	}
	sp = task.Start("binding")
	binding.Annotate(lam)
	sp.End()
	if err := c.Opts.Fault.Fire("rep", name); err != nil {
		return nil, err
	}
	sp = task.Start("rep")
	vr := rep.Annotate(lam, c.Opts.RepAnalysis)
	sp.End()
	if err := c.Opts.Fault.Fire("pdl", name); err != nil {
		return nil, err
	}
	sp = task.Start("pdl")
	pdl.Annotate(lam, c.Opts.PdlNumbers)
	sp.End()
	p.Lam, p.vr = lam, vr
	return p, nil
}

// flushTranscript writes this unit's buffered optimizer transcript to
// the shared log. Called from Emit, which callers serialize in source
// order, so transcripts appear exactly as in a sequential compile.
func (c *Compiler) flushTranscript(p *Prepared) {
	if p.transcript != nil && c.Opts.OptimizerLog != nil {
		c.Opts.OptimizerLog.Write(p.transcript.Bytes())
		p.transcript = nil
	}
}

// Emit lowers a Prepared function into the machine and installs the
// symbol's function cell, returning the function index. Emission mutates
// shared machine state (code, symbol and function tables, the heap), so
// concurrent callers must serialize Emit — in source order, if the
// resulting image is to be independent of how Prepares were scheduled.
func (c *Compiler) Emit(name string, p *Prepared) (int, error) {
	c.flushTranscript(p)
	idx, _, err := c.compileLambda(name, p.Lam, nil, p.vr)
	if err != nil {
		return 0, err
	}
	c.M.SetSymbolFunction(name, s1.Ptr(s1.TagFunc, uint64(idx)))
	return idx, nil
}

// EmitRecorded is Emit, additionally returning the assembled item list of
// the function's own body (not including any closure functions it
// installed along the way) for content-addressed caching.
func (c *Compiler) EmitRecorded(name string, p *Prepared) (idx int, items []s1.Item, err error) {
	c.flushTranscript(p)
	idx, items, err = c.compileLambda(name, p.Lam, nil, p.vr)
	if err != nil {
		return 0, nil, err
	}
	c.M.SetSymbolFunction(name, s1.Ptr(s1.TagFunc, uint64(idx)))
	return idx, items, nil
}

// CompileFunction compiles a top-level named function. It returns the
// function index in the machine and installs the symbol's function cell.
func (c *Compiler) CompileFunction(name string, lam *tree.Lambda) (int, error) {
	p, err := c.Prepare(name, lam)
	if err != nil {
		return 0, err
	}
	return c.Emit(name, p)
}

// frameCtx describes one lexical frame for closure compilation: the heap
// environment slot order and the chain to outer frames.
type frameCtx struct {
	parent  *frameCtx
	envVars []*tree.Var
}

func (f *frameCtx) find(v *tree.Var) (depth, slot int, ok bool) {
	d := 0
	for c := f; c != nil; c = c.parent {
		for i, ev := range c.envVars {
			if ev == v {
				return d, i, true
			}
		}
		d++
	}
	return 0, 0, false
}

// fc is the per-function compilation state.
type fc struct {
	c    *Compiler
	name string
	lam  *tree.Lambda
	vr   rep.VarReps

	alloc *tn.Allocator
	code  []absItem

	// varTN maps frame-resident variables to their TNs; params use fixed
	// homes instead.
	varTN map[*tree.Var]*tn.TN
	// paramHome maps parameters to their fixed operands.
	paramHome map[*tree.Var]s1.Operand

	// jump-strategy lambdas: label, parameter TNs, pending emission.
	jumpBlocks map[*tree.Lambda]*jumpBlock
	pending    []*tree.Lambda

	// env handling
	frame  *frameCtx // this function's frame (with parent chain)
	envTN  *tn.TN    // local holding this frame's env object, if any
	hasEnv bool

	// special caching
	placements map[*sexp.Symbol]tree.Node
	specCache  map[*sexp.Symbol]*tn.TN

	specialsBound int // dynamic bindings made by the prologue
	dynSpecials   int // let-bound dynamic bindings currently in force
	catchDepth    int

	pbCtxs []pbCtx // active progbody contexts

	// pdlSlots are the stack slots holding pdl-number data; their
	// lifetime "must extend at least as far as the lifetime of the
	// program node … that originally authorized creation of a pdl
	// number" — we conservatively extend them to the end of the function.
	pdlSlots []*tn.TN

	frameSizePatch int // index of the prologue ADD SP instruction
	labelCounter   int
	retLabel       string
	nReserved      int // reserved frame slots (normalized params etc.)
}

type jumpBlock struct {
	label  string
	params []*tn.TN
	// startTick is the emission tick of the block's label (0 until the
	// block is emitted); a call to an already-emitted block is a backward
	// jump.
	startTick int
}

// pbCtx is an active progbody emission context.
type pbCtx struct {
	pb       *tree.ProgBody
	end      string
	res      *tn.TN
	tags     map[*sexp.Symbol]string
	tagTicks map[*sexp.Symbol]int
}

func (c *Compiler) gensym(prefix string) string {
	c.gen++
	return fmt.Sprintf("%s%d", prefix, c.gen)
}

// GenCount reads the gensym counter. Generated label names embed it, so
// the durable compile cache records it alongside each capture: an entry
// replays only at the counter value it was captured at, and the counter
// is then advanced (SetGenCount) exactly as a recompile would have.
func (c *Compiler) GenCount() int { return c.gen }

// SetGenCount sets the gensym counter (durable-cache replay).
func (c *Compiler) SetGenCount(n int) { c.gen = n }

// ConstArrayWord reports the machine word of an interned compile-time
// constant float array (the machine holds its own copy of the data).
func (c *Compiler) ConstArrayWord(fa *sexp.FloatArray) (s1.Word, bool) {
	w, ok := c.constArrays[fa]
	return w, ok
}

// primStub returns (creating on demand) a callable function wrapping a
// primitive: its body hands the whole argument frame to the primitive
// gateway. This is what #'car denotes as a value.
func (c *Compiler) primStub(name string) (int, error) {
	stub := "%prim-" + name
	if idx := c.M.FuncNamed(stub); idx >= 0 {
		return idx, nil
	}
	sym := c.M.InternSym(name)
	items := []s1.Item{
		s1.InstrItem(s1.Instr{Op: s1.OpCALLSQ, TagArg: s1.SQPrimFrame,
			B: s1.ImmInt(int64(sym)), Comment: "primitive " + name}),
		s1.InstrItem(s1.Instr{Op: s1.OpRET}),
	}
	return c.M.AddFunction(stub, 0, -1, items)
}

// compileLambda compiles one activation-bearing lambda (FastCall or
// FullClosure, or a top-level function) and returns its function index
// along with the assembled item list it installed.
func (c *Compiler) compileLambda(name string, lam *tree.Lambda, parent *frameCtx, vr rep.VarReps) (int, []s1.Item, error) {
	f := &fc{
		c: c, name: name, lam: lam, vr: vr,
		alloc:      tn.New(!c.Opts.UseTN),
		varTN:      map[*tree.Var]*tn.TN{},
		paramHome:  map[*tree.Var]s1.Operand{},
		jumpBlocks: map[*tree.Lambda]*jumpBlock{},
		specCache:  map[*sexp.Symbol]*tn.TN{},
	}
	// Frame env: every Closed variable whose home frame is this lambda.
	f.frame = &frameCtx{parent: parent}
	collectFrameEnvVars(lam, f.frame)
	f.hasEnv = len(f.frame.envVars) > 0

	if c.Opts.SpecialCaching {
		pls := analysis.SpecialPlacements(lam)
		f.placements = pls[lam]
	}

	if err := f.emitFunction(); err != nil {
		return 0, nil, err
	}
	items, minA, maxA, err := f.finish()
	if err != nil {
		return 0, nil, err
	}
	idx, err := c.M.AddFunction(name, minA, maxA, items)
	if err != nil {
		return 0, nil, err
	}
	return idx, items, nil
}

// collectFrameEnvVars gathers heap variables belonging to lam's frame:
// its own closed params plus closed vars of open/jump lambdas executing
// in the same frame.
func collectFrameEnvVars(lam *tree.Lambda, f *frameCtx) {
	seen := map[*tree.Var]bool{}
	add := func(v *tree.Var) {
		if v.Closed && !seen[v] {
			seen[v] = true
			f.envVars = append(f.envVars, v)
		}
	}
	for _, v := range lam.Params() {
		add(v)
	}
	var walk func(n tree.Node)
	walk = func(n tree.Node) {
		if inner, ok := n.(*tree.Lambda); ok && inner != lam {
			// Open/jump lambdas share this frame; others start new ones.
			if inner.Strategy == tree.StrategyOpen || inner.Strategy == tree.StrategyJump {
				for _, v := range inner.Params() {
					add(v)
				}
			} else {
				return
			}
		}
		for _, ch := range tree.Children(n) {
			walk(ch)
		}
	}
	walk(lam.Body)
}

func (f *fc) label(prefix string) string {
	f.labelCounter++
	return fmt.Sprintf("%s$%s%d", f.name, prefix, f.labelCounter)
}

// --- abstract instructions ---

// absOperand is either a concrete operand or a TN placeholder.
type absOperand struct {
	op s1.Operand
	tn *tn.TN
}

func conc(op s1.Operand) absOperand { return absOperand{op: op} }
func tnOp(t *tn.TN) absOperand      { return absOperand{tn: t} }

var noOperand = absOperand{}

type absItem struct {
	label    string
	op       s1.Op
	a, b, cc absOperand
	tagArg   int64
	comment  string
	tick     int
	present  bool // instruction (vs label)
}

func (f *fc) emitLabel(l string) {
	f.code = append(f.code, absItem{label: l})
}

func (f *fc) emit(op s1.Op, a, b, cc absOperand, tagArg int64, comment string) {
	t := f.alloc.Tick()
	switch op {
	case s1.OpCALL, s1.OpTCALL, s1.OpCALLF, s1.OpTCALLF:
		f.alloc.NoteCall()
	case s1.OpCALLSQ:
		if tagArg == s1.SQApplyList {
			f.alloc.NoteCall()
		} else {
			f.alloc.NoteSQ()
		}
	}
	touch := func(o absOperand) {
		if o.tn != nil {
			o.tn.Touch(t)
		}
	}
	touch(a)
	touch(b)
	touch(cc)
	f.code = append(f.code, absItem{op: op, a: a, b: b, cc: cc,
		tagArg: tagArg, comment: comment, tick: t, present: true})
}

// newTN makes a fresh TN touched at the current tick.
func (f *fc) newTN(name string) *tn.TN {
	t := f.alloc.NewTN(name)
	t.Touch(f.alloc.Now())
	return t
}
