package codegen

import (
	"repro/internal/prim"
	"repro/internal/s1"
	"repro/internal/tree"
)

// sq2 maps generic two-argument primitives to SQ routines.
var sq2 = map[string]int64{
	"cons": s1.SQCons, "rplaca": s1.SQRplaca, "rplacd": s1.SQRplacd,
	"eql": s1.SQEql, "equal": s1.SQEqual,
	"=": s1.SQNumEq, "<": s1.SQLt, ">": s1.SQGt, "<=": s1.SQLe, ">=": s1.SQGe,
}

// sqFold maps n-ary generic arithmetic to its pairwise SQ routine.
var sqFold = map[string]int64{
	"+": s1.SQAdd, "-": s1.SQSub, "*": s1.SQMul, "/": s1.SQDiv,
}

// unaryFloatOp maps type-specific unary float primitives to opcodes.
// sin$f/cos$f take radians and need a compile-time cycles conversion; the
// optimizer normally rewrites them to sinc$f first.
var unaryFloatOp = map[string]s1.Op{
	"neg$f": s1.OpFNEG, "abs$f": s1.OpFABS, "sqrt$f": s1.OpFSQRT,
	"sinc$f": s1.OpFSIN, "cosc$f": s1.OpFCOS,
	"atan$f": s1.OpFATAN, "exp$f": s1.OpFEXP, "log$f": s1.OpFLOG,
}

// emitPrimCall compiles a call to a known primitive in value position,
// delivering the result in the node's annotated ISREP.
func (f *fc) emitPrimCall(name string, x *tree.Call) (absOperand, error) {
	v, produced, err := f.primCallInner(name, x)
	if err != nil {
		return noOperand, err
	}
	return f.coerce(x, v, produced, effectiveRep(x.Info().IsRep))
}

// primCallInner emits the call and reports the representation it actually
// delivered.
func (f *fc) primCallInner(name string, x *tree.Call) (absOperand, tree.Rep, error) {
	p := prim.LookupString(name)

	// Type-specific binary arithmetic: the RT-register world.
	if mop := prim.BinaryFloatOp(name); mop != "" && len(x.Args) == 2 {
		v, err := f.emitRawBinary(floatOpcode(mop), x.Args[0], x.Args[1], tree.RepSWFLO)
		return v, tree.RepSWFLO, err
	}
	if mop := prim.BinaryFixOp(name); mop != "" && len(x.Args) == 2 {
		v, err := f.emitRawBinary(fixOpcode(mop), x.Args[0], x.Args[1], tree.RepSWFIX)
		return v, tree.RepSWFIX, err
	}
	if op, ok := unaryFloatOp[name]; ok && len(x.Args) == 1 {
		v, err := f.emitCoercedTo(x.Args[0], tree.RepSWFLO)
		if err != nil {
			return noOperand, 0, err
		}
		res := f.newTN(name)
		res.PreferRT = true
		f.emit(op, tnOp(res), v, noOperand, 0, name)
		return tnOp(res), tree.RepSWFLO, err
	}
	switch name {
	case "sin$f", "cos$f":
		// Radians: scale to cycles at run time, then the hardware
		// instruction. (With the optimizer on, this path is never
		// reached: META-SIN-TO-SINC folds the scaling constant.)
		v, err := f.emitCoercedTo(x.Args[0], tree.RepSWFLO)
		if err != nil {
			return noOperand, 0, err
		}
		scaled := f.newTN("cycles")
		scaled.PreferRT = true
		f.emit(s1.OpFMULT, tnOp(scaled), v,
			conc(s1.Imm(s1.RawFloat(0.15915494309189535))), 0, "radians to cycles")
		op := s1.OpFSIN
		if name == "cos$f" {
			op = s1.OpFCOS
		}
		res := f.newTN(name)
		res.PreferRT = true
		f.emit(op, tnOp(res), tnOp(scaled), noOperand, 0, name)
		return tnOp(res), tree.RepSWFLO, nil

	case "1+&", "1-&":
		v, err := f.emitCoercedTo(x.Args[0], tree.RepSWFIX)
		if err != nil {
			return noOperand, 0, err
		}
		res := f.newTN(name)
		res.PreferRT = true
		op := s1.OpADD
		if name == "1-&" {
			op = s1.OpSUB
		}
		f.emit(op, tnOp(res), v, conc(s1.ImmInt(1)), 0, name)
		return tnOp(res), tree.RepSWFIX, nil

	case "float":
		if len(x.Args) == 1 && x.Args[0].Info().IsRep == tree.RepSWFIX {
			v, err := f.emitCoercedTo(x.Args[0], tree.RepSWFIX)
			if err != nil {
				return noOperand, 0, err
			}
			res := f.newTN("float")
			f.emit(s1.OpFLT, tnOp(res), v, noOperand, 0, "float")
			return tnOp(res), tree.RepSWFLO, nil
		}

	case "fix":
		if len(x.Args) == 1 && x.Args[0].Info().IsRep == tree.RepSWFLO {
			v, err := f.emitCoercedTo(x.Args[0], tree.RepSWFLO)
			if err != nil {
				return noOperand, 0, err
			}
			res := f.newTN("fix")
			f.emit(s1.OpFIX, tnOp(res), v, noOperand, 0, "fix")
			return tnOp(res), tree.RepSWFIX, nil
		}

	case "aref$f":
		v, err := f.emitArefF(x)
		return v, tree.RepSWFLO, err

	case "aset$f":
		v, err := f.emitAsetF(x)
		return v, tree.RepSWFLO, err

	case "car", "cdr":
		sq := int64(s1.SQCar)
		if name == "cdr" {
			sq = s1.SQCdr
		}
		v, err := f.emitSQ1(x.Args[0], sq, name)
		return v, tree.RepPOINTER, err

	case "not", "null", "eq", "consp", "zerop":
		// Comparisons/predicates in value position: materialize T/NIL
		// through the test emitter.
		v, err := f.emitBoolValue(x)
		return v, tree.RepPOINTER, err

	case "throw":
		a, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return noOperand, 0, err
		}
		if a, err = f.stabilize(a); err != nil {
			return noOperand, 0, err
		}
		b, err := f.emitCoercedTo(x.Args[1], tree.RepPOINTER)
		if err != nil {
			return noOperand, 0, err
		}
		f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), b, noOperand, 0, "")
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), a, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQThrow, "throw")
		return conc(s1.Imm(s1.NilWord)), tree.RepPOINTER, nil

	case "list":
		if err := f.pushArgs(x.Args); err != nil {
			return noOperand, 0, err
		}
		f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(int64(len(x.Args)))),
			noOperand, s1.SQList, "list")
		v, err := f.fromA("list")
		return v, tree.RepPOINTER, err

	case "apply":
		if len(x.Args) == 2 {
			fn, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
			if err != nil {
				return noOperand, 0, err
			}
			if fn, err = f.stabilize(fn); err != nil {
				return noOperand, 0, err
			}
			lst, err := f.emitCoercedTo(x.Args[1], tree.RepPOINTER)
			if err != nil {
				return noOperand, 0, err
			}
			f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), lst, noOperand, 0, "")
			f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), fn, noOperand, 0, "")
			f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQApplyList, "apply")
			res := f.newTN("apply")
			f.emit(s1.OpPOP, tnOp(res), noOperand, noOperand, 0, "")
			return tnOp(res), tree.RepPOINTER, nil
		}

	case "funcall":
		// (funcall f args…) with the head not lexically resolvable.
		if len(x.Args) >= 1 {
			fnv, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
			if err != nil {
				return noOperand, 0, err
			}
			v, err := f.emitFullCall(fnv, x.Args[1:], s1.OpCALL, "funcall")
			return v, tree.RepPOINTER, err
		}

	case "print", "prin1", "princ":
		v, err := f.emitSQ1(x.Args[0], s1.SQPrint, name)
		return v, tree.RepPOINTER, err

	case "error":
		a, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return noOperand, 0, err
		}
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), a, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQError, "error")
		return conc(s1.Imm(s1.NilWord)), tree.RepPOINTER, nil

	case "identity":
		v, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		return v, tree.RepPOINTER, err
	}

	// Generic pairwise arithmetic.
	if sq, ok := sqFold[name]; ok && len(x.Args) >= 1 {
		v, err := f.emitGenericFold(name, sq, x.Args)
		return v, tree.RepPOINTER, err
	}
	// Generic binary SQ routines (possibly with certification for unsafe
	// stores).
	if sq, ok := sq2[name]; ok && len(x.Args) == 2 {
		certify := p != nil && !p.Safe && f.c.Opts.PdlNumbers
		v, err := f.emitSQ2(x.Args[0], x.Args[1], sq, name, certify)
		return v, tree.RepPOINTER, err
	}
	// Everything else goes through the fallback primitive gateway.
	v, err := f.emitSQPrim(name, x.Args)
	return v, tree.RepPOINTER, err
}

// fromA copies the SQ result register into a fresh TN.
func (f *fc) fromA(name string) (absOperand, error) {
	res := f.newTN(name)
	f.emit(s1.OpMOV, tnOp(res), conc(s1.R(s1.RegA)), noOperand, 0, "")
	return tnOp(res), nil
}

func (f *fc) emitSQ1(arg tree.Node, sq int64, name string) (absOperand, error) {
	a, err := f.emitCoercedTo(arg, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), a, noOperand, 0, "")
	f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, sq, name)
	return f.fromA(name)
}

func (f *fc) emitSQ2(a1, a2 tree.Node, sq int64, name string, certifySecond bool) (absOperand, error) {
	a, err := f.emitCoercedTo(a1, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	if a, err = f.stabilize(a); err != nil {
		return noOperand, err
	}
	b, err := f.emitCoercedTo(a2, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	if certifySecond && maybeUnsafe(a2) {
		// §6.3: before an unsafe operation (storing a pointer into a heap
		// object), the pointer must be certified.
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), b, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQCertify,
			"certify pointer before unsafe "+name)
		b, err = f.fromA("certified")
		if err != nil {
			return noOperand, err
		}
	}
	f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), b, noOperand, 0, "")
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), a, noOperand, 0, "")
	f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, sq, name)
	return f.fromA(name)
}

func (f *fc) emitGenericFold(name string, sq int64, args []tree.Node) (absOperand, error) {
	if len(args) == 1 {
		switch name {
		case "-":
			return f.emitSQ2(tree.NewLiteral(fix0()), args[0], s1.SQSub, "negate", false)
		case "/":
			return f.emitSQ2(tree.NewLiteral(fix1()), args[0], s1.SQDiv, "invert", false)
		default:
			return f.emitCoercedTo(args[0], tree.RepPOINTER)
		}
	}
	acc, err := f.emitCoercedTo(args[0], tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	if acc, err = f.stabilize(acc); err != nil {
		return noOperand, err
	}
	for _, a := range args[1:] {
		b, err := f.emitCoercedTo(a, tree.RepPOINTER)
		if err != nil {
			return noOperand, err
		}
		f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), b, noOperand, 0, "")
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), acc, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, sq, name)
		if acc, err = f.fromA(name); err != nil {
			return noOperand, err
		}
	}
	return acc, nil
}

// emitSQPrim is the fallback: push converted arguments, call the
// primitive gateway with the symbol and count.
func (f *fc) emitSQPrim(name string, args []tree.Node) (absOperand, error) {
	if err := f.pushArgs(args); err != nil {
		return noOperand, err
	}
	sym := f.c.M.InternSym(name)
	f.emit(s1.OpCALLSQ, noOperand, conc(s1.ImmInt(int64(sym))),
		conc(s1.ImmInt(int64(len(args)))), s1.SQPrim, name)
	return f.fromA(name)
}

// emitBoolValue materializes a T/NIL value through the jump emitter.
func (f *fc) emitBoolValue(x *tree.Call) (absOperand, error) {
	falseL := f.label("bfalse")
	joinL := f.label("bjoin")
	res := f.newTN("bool")
	if err := f.emitTest(x, falseL); err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, tnOp(res), conc(s1.Imm(s1.TWord)), noOperand, 0, "")
	f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
	f.emitLabel(falseL)
	f.emit(s1.OpMOV, tnOp(res), conc(s1.Imm(s1.NilWord)), noOperand, 0, "")
	f.emitLabel(joinL)
	res.Touch(f.alloc.Now())
	return tnOp(res), nil
}

func floatOpcode(mop string) s1.Op {
	switch mop {
	case "FADD":
		return s1.OpFADD
	case "FSUB":
		return s1.OpFSUB
	case "FMULT":
		return s1.OpFMULT
	case "FDIV":
		return s1.OpFDIV
	case "FMAX":
		return s1.OpFMAX
	case "FMIN":
		return s1.OpFMIN
	}
	return s1.OpNOP
}

func fixOpcode(mop string) s1.Op {
	switch mop {
	case "ADD":
		return s1.OpADD
	case "SUB":
		return s1.OpSUB
	case "MULT":
		return s1.OpMULT
	case "DIV":
		return s1.OpDIV
	}
	return s1.OpNOP
}
