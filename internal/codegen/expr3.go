package codegen

import (
	"fmt"

	"repro/internal/prim"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// emitOpenBindings evaluates a let's initializers and binds them; the
// returned count is the number of dynamic bindings made (to be unbound
// after the body).
func (f *fc) emitOpenBindings(call *tree.Call, lam *tree.Lambda) (int, error) {
	if len(call.Args) != len(lam.Required) {
		return 0, cgerrf("%s: open call arity mismatch", f.name)
	}
	type bound struct {
		v  *tree.Var
		op absOperand
	}
	var pending []bound
	specials := 0
	for i, v := range lam.Required {
		arg := call.Args[i]
		// Jump-strategy lambdas are not values: register their block.
		if argLam, ok := arg.(*tree.Lambda); ok && argLam.Strategy == tree.StrategyJump {
			f.registerJumpBlock(v, argLam)
			continue
		}
		want := f.vr.Rep(v)
		if v.Special {
			want = tree.RepPOINTER
		}
		val, err := f.emitCoercedTo(arg, want)
		if err != nil {
			return 0, err
		}
		if val, err = f.stabilize(val); err != nil {
			return 0, err
		}
		pending = append(pending, bound{v: v, op: val})
	}
	// Bind after all initializers (let is parallel).
	for _, b := range pending {
		if b.v.Special {
			sym := f.c.M.InternSym(b.v.Name.Name)
			f.emit(s1.OpSPECBIND, b.op, noOperand, noOperand, int64(sym),
				"bind special "+b.v.Name.Name)
			specials++
			f.dynSpecialsAdjust(1)
			continue
		}
		if err := f.varWrite(b.v, b.op); err != nil {
			return 0, err
		}
	}
	return specials, nil
}

// registerJumpBlock creates the label and parameter TNs for a
// jump-strategy lambda and queues its body for emission.
func (f *fc) registerJumpBlock(v *tree.Var, lam *tree.Lambda) {
	jb := &jumpBlock{label: f.label("jump_" + v.Name.Name)}
	for _, p := range lam.Required {
		t := f.newTN("jparam:" + p.Name.Name)
		t.WantFrame = true // reached from several sites; keep it simple
		jb.params = append(jb.params, t)
		f.varTN[p] = t
	}
	f.jumpBlocks[lam] = jb
	f.pending = append(f.pending, lam)
}

// jumpBlockFor finds the block for a variable bound to a jump lambda.
func (f *fc) jumpBlockFor(v *tree.Var) *jumpBlock {
	for lam, jb := range f.jumpBlocks {
		if lam.SelfVar == v {
			return jb
		}
	}
	return nil
}

// emitJumpCall compiles a call to a jump-strategy lambda: parameter
// moves plus an unconditional branch — "in effect such calls represent
// simple goto's".
func (f *fc) emitJumpCall(call *tree.Call, v *tree.Var, jb *jumpBlock) error {
	var vals []absOperand
	for _, a := range call.Args {
		val, err := f.emitCoercedTo(a, tree.RepPOINTER)
		if err != nil {
			return err
		}
		if val, err = f.stabilize(val); err != nil {
			return err
		}
		vals = append(vals, val)
	}
	if len(vals) != len(jb.params) {
		return cgerrf("%s: jump call arity mismatch for %s", f.name, v)
	}
	for i, val := range vals {
		f.emit(s1.OpMOV, tnOp(jb.params[i]), val, noOperand, 0, "jump parameter")
	}
	f.emit(s1.OpJMP, conc(s1.Lbl(jb.label)), noOperand, noOperand, 0,
		"parameter-passing goto "+v.Name.Name)
	if jb.startTick > 0 {
		// The block was already emitted: this is a backward jump.
		f.alloc.AddLoopRegion(jb.startTick, f.alloc.Now())
	}
	return nil
}

// emitClosure compiles an escaping lambda as a separate function and
// emits the closure construction.
func (f *fc) emitClosure(lam *tree.Lambda) (absOperand, error) {
	name := f.c.gensym(f.name + "$closure")
	idx, _, err := f.c.compileLambda(name, lam, f.closureParentCtx(), f.vr)
	if err != nil {
		return noOperand, err
	}
	env, err := f.currentEnvOperand()
	if err != nil {
		return noOperand, err
	}
	res := f.newTN("closure")
	f.emit(s1.OpCLOSE, tnOp(res), env, noOperand, int64(idx),
		"construct closure "+name)
	return tnOp(res), nil
}

// closureParentCtx is the frame chain inner closures capture: this frame
// if it has an environment, else our parent chain.
func (f *fc) closureParentCtx() *frameCtx {
	if f.hasEnv {
		return f.frame
	}
	return f.frame.parent
}

// currentEnvOperand is the environment a new closure should capture.
func (f *fc) currentEnvOperand() (absOperand, error) {
	if f.hasEnv {
		return tnOp(f.envTN), nil
	}
	return conc(s1.R(s1.RegEP)), nil
}

// emitProgBody compiles tagged statements with go/return.
func (f *fc) emitProgBody(pb *tree.ProgBody) (absOperand, error) {
	endL := f.label("pbend")
	res := f.newTN("pb")
	res.WantFrame = true // live across arbitrary control flow
	tagLabels := map[*sexp.Symbol]string{}
	for _, t := range pb.Tags {
		tagLabels[t.Name] = f.label("tag_" + t.Name.Name)
	}
	tagTicks := map[*sexp.Symbol]int{}
	old := f.pbCtxs
	f.pbCtxs = append(f.pbCtxs, pbCtx{pb: pb, end: endL, res: res,
		tags: tagLabels, tagTicks: tagTicks})
	defer func() { f.pbCtxs = old }()

	ti := 0
	for i := 0; i <= len(pb.Forms); i++ {
		for ti < len(pb.Tags) && pb.Tags[ti].Index == i {
			f.emitLabel(tagLabels[pb.Tags[ti].Name])
			tagTicks[pb.Tags[ti].Name] = f.alloc.Now()
			ti++
		}
		if i < len(pb.Forms) {
			if err := f.emitStatement(pb.Forms[i]); err != nil {
				return noOperand, err
			}
		}
	}
	f.emit(s1.OpMOV, tnOp(res), conc(s1.Imm(s1.NilWord)), noOperand, 0,
		"progbody falls off the end")
	f.emitLabel(endL)
	res.Touch(f.alloc.Now())
	return tnOp(res), nil
}

// emitStatement is emitEffect plus go/return handling.
func (f *fc) emitStatement(n tree.Node) error {
	switch x := n.(type) {
	case *tree.Go:
		ctx := f.findPBCtx(x.Target)
		if ctx == nil {
			return cgerrf("go to unknown progbody")
		}
		lbl, ok := ctx.tags[x.Tag]
		if !ok {
			return cgerrf("go to unknown tag %s", x.Tag.Name)
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(lbl)), noOperand, noOperand, 0,
			"go "+x.Tag.Name)
		if start, seen := ctx.tagTicks[x.Tag]; seen {
			// Backward jump: everything in [tag, here] may re-execute.
			f.alloc.AddLoopRegion(start, f.alloc.Now())
		}
		return nil
	case *tree.Return:
		ctx := f.findPBCtx(x.Target)
		if ctx == nil {
			return cgerrf("return to unknown progbody")
		}
		v, err := f.emitCoercedTo(x.Value, tree.RepPOINTER)
		if err != nil {
			return err
		}
		f.emit(s1.OpMOV, tnOp(ctx.res), v, noOperand, 0, "return value")
		f.emit(s1.OpJMP, conc(s1.Lbl(ctx.end)), noOperand, noOperand, 0, "return")
		return nil
	case *tree.If:
		// Statements containing go/return in arms.
		elseL := f.label("else")
		joinL := f.label("join")
		if err := f.emitTest(x.Test, elseL); err != nil {
			return err
		}
		if err := f.emitStatement(x.Then); err != nil {
			return err
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
		f.emitLabel(elseL)
		if err := f.emitStatement(x.Else); err != nil {
			return err
		}
		f.emitLabel(joinL)
		return nil
	case *tree.Progn:
		for _, form := range x.Forms {
			if err := f.emitStatement(form); err != nil {
				return err
			}
		}
		return nil
	}
	return f.emitEffect(n)
}

func (f *fc) findPBCtx(pb *tree.ProgBody) *pbCtx {
	for i := len(f.pbCtxs) - 1; i >= 0; i-- {
		if f.pbCtxs[i].pb == pb {
			return &f.pbCtxs[i]
		}
	}
	return nil
}

// emitCatcher compiles catch: a catch frame, the body, and a handler
// join.
func (f *fc) emitCatcher(x *tree.Catcher) (absOperand, error) {
	handlerL := f.label("handler")
	joinL := f.label("catchjoin")
	res := f.newTN("catch")
	res.WantFrame = true
	tag, err := f.emitCoercedTo(x.Tag, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpCATCH, tag, conc(s1.Lbl(handlerL)), noOperand, 0, "establish catch")
	f.catchDepth++
	v, err := f.emitCoercedTo(x.Body, tree.RepPOINTER)
	f.catchDepth--
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, tnOp(res), v, noOperand, 0, "")
	f.emit(s1.OpENDCATCH, noOperand, noOperand, noOperand, 0, "")
	f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
	f.emitLabel(handlerL)
	f.emit(s1.OpMOV, tnOp(res), conc(s1.R(s1.RegA)), noOperand, 0,
		"thrown value arrives in A")
	f.emitLabel(joinL)
	res.Touch(f.alloc.Now())
	return tnOp(res), nil
}

// emitCaseq dispatches on an eql key.
func (f *fc) emitCaseq(x *tree.Caseq) (absOperand, error) {
	key, err := f.emitCoercedTo(x.Key, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	keyTN := f.newTN("key")
	f.emit(s1.OpMOV, tnOp(keyTN), key, noOperand, 0, "caseq key")
	res := f.newTN("caseq")
	res.WantFrame = true
	joinL := f.label("cqjoin")
	var clauseLabels []string
	for i, cl := range x.Clauses {
		lbl := f.label(fmt.Sprintf("cq%d", i))
		clauseLabels = append(clauseLabels, lbl)
		for _, k := range cl.Keys {
			if eqlImmediate(k) {
				f.emit(s1.OpJEQW, tnOp(keyTN), conc(s1.Imm(f.c.M.FromValue(k))),
					conc(s1.Lbl(lbl)), 0, "caseq key "+sexp.Print(k))
			} else {
				f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), tnOp(keyTN), noOperand, 0, "")
				f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), conc(s1.Imm(f.c.M.FromValue(k))),
					noOperand, 0, "")
				f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQEql, "")
				f.emit(s1.OpJNNIL, conc(s1.R(s1.RegA)), conc(s1.Lbl(lbl)), noOperand, 0, "")
			}
		}
	}
	// Default.
	if x.Default != nil {
		v, err := f.emitCoercedTo(x.Default, tree.RepPOINTER)
		if err != nil {
			return noOperand, err
		}
		f.emit(s1.OpMOV, tnOp(res), v, noOperand, 0, "")
	} else {
		f.emit(s1.OpMOV, tnOp(res), conc(s1.Imm(s1.NilWord)), noOperand, 0, "")
	}
	f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
	for i, cl := range x.Clauses {
		f.emitLabel(clauseLabels[i])
		v, err := f.emitCoercedTo(cl.Body, tree.RepPOINTER)
		if err != nil {
			return noOperand, err
		}
		f.emit(s1.OpMOV, tnOp(res), v, noOperand, 0, "")
		f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
	}
	f.emitLabel(joinL)
	res.Touch(f.alloc.Now())
	return tnOp(res), nil
}

// eqlImmediate reports keys comparable with a full-word JEQW.
func eqlImmediate(k sexp.Value) bool {
	switch k.(type) {
	case sexp.Fixnum, *sexp.Symbol, sexp.Character:
		return true
	}
	return false
}

// emitCall compiles a call node in value (non-tail) position.
func (f *fc) emitCall(x *tree.Call, _ bool) (absOperand, error) {
	switch fn := x.Fn.(type) {
	case *tree.Lambda:
		if fn.Strategy == tree.StrategyOpen {
			unbind, err := f.emitOpenBindings(x, fn)
			if err != nil {
				return noOperand, err
			}
			v, err := f.emitNode(fn.Body)
			if err != nil {
				return noOperand, err
			}
			if unbind > 0 {
				if v, err = f.stabilize(v); err != nil {
					return noOperand, err
				}
				f.emit(s1.OpSPECUNBIND, noOperand, noOperand, noOperand,
					int64(unbind), "unbind let specials")
				f.dynSpecialsAdjust(-unbind)
			}
			return v, nil
		}
		// Fast-linkage lambda called directly.
		cl, err := f.emitClosure(fn)
		if err != nil {
			return noOperand, err
		}
		return f.emitFullCall(cl, x.Args, s1.OpCALLF, "direct lambda call")

	case *tree.VarRef:
		if jb := f.jumpBlockFor(fn.Var); jb != nil {
			// A jump-lambda call in non-tail position would need a
			// continuation; binding annotation only assigns JUMP when all
			// calls are tail, so this is a compiler bug.
			return noOperand, cgerrf("jump lambda called in non-tail position")
		}
		fnv, err := f.varRead(fn.Var)
		if err != nil {
			return noOperand, err
		}
		return f.emitFullCall(fnv, x.Args, s1.OpCALL, "call through "+fn.Var.Name.Name)

	case *tree.FunRef:
		if prim.Lookup(fn.Name) != nil {
			return f.emitPrimCall(fn.Name.Name, x)
		}
		op, err := f.funRefOperand(fn)
		if err != nil {
			return noOperand, err
		}
		return f.emitFullCall(op, x.Args, s1.OpCALL, "call "+fn.Name.Name)
	}
	fnv, err := f.emitCoercedTo(x.Fn, tree.RepPOINTER)
	if err != nil {
		return noOperand, err
	}
	if fnv, err = f.stabilize(fnv); err != nil {
		return noOperand, err
	}
	return f.emitFullCall(fnv, x.Args, s1.OpCALL, "computed call")
}

// emitFullCall pushes arguments and performs a standard (or fast) call;
// the result comes back on the stack.
func (f *fc) emitFullCall(fn absOperand, args []tree.Node, op s1.Op, comment string) (absOperand, error) {
	fn, err := f.stabilize(fn)
	if err != nil {
		return noOperand, err
	}
	if err := f.pushArgs(args); err != nil {
		return noOperand, err
	}
	f.emit(op, fn, noOperand, noOperand, int64(len(args)), comment)
	res := f.newTN("callres")
	f.emit(s1.OpPOP, tnOp(res), noOperand, noOperand, 0, "returned value")
	return tnOp(res), nil
}
