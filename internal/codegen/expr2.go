package codegen

import (
	"fmt"

	"repro/internal/prim"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// emitNode evaluates n and returns an operand holding its value in n's
// ISREP.
func (f *fc) emitNode(n tree.Node) (absOperand, error) {
	f.maybeEmitSpecFinds(n)
	switch x := n.(type) {
	case *tree.Literal:
		return f.literalOperand(x, n.Info().IsRep)

	case *tree.VarRef:
		return f.varRead(x.Var)

	case *tree.FunRef:
		return f.funRefOperand(x)

	case *tree.Setq:
		want := n.Info().IsRep
		v, err := f.emitCoercedTo(x.Value, want)
		if err != nil {
			return noOperand, err
		}
		// Stabilize env/scratch operands before storing.
		v, err = f.stabilize(v)
		if err != nil {
			return noOperand, err
		}
		if err := f.varWrite(x.Var, v); err != nil {
			return noOperand, err
		}
		return v, nil

	case *tree.If:
		return f.emitIfValue(x)

	case *tree.Progn:
		if len(x.Forms) == 0 {
			return conc(s1.Imm(s1.NilWord)), nil
		}
		for _, form := range x.Forms[:len(x.Forms)-1] {
			if err := f.emitEffect(form); err != nil {
				return noOperand, err
			}
		}
		return f.emitNode(x.Forms[len(x.Forms)-1])

	case *tree.Call:
		return f.emitCall(x, false)

	case *tree.Lambda:
		return f.emitClosure(x)

	case *tree.ProgBody:
		return f.emitProgBody(x)

	case *tree.Go:
		return noOperand, cgerrf("go outside progbody emission")

	case *tree.Return:
		return noOperand, cgerrf("return outside progbody emission")

	case *tree.Catcher:
		return f.emitCatcher(x)

	case *tree.Caseq:
		return f.emitCaseq(x)
	}
	return noOperand, cgerrf("cannot emit %T", n)
}

// stabilize copies a volatile operand (register A/B/R2-based memory) into
// a TN so later emissions cannot clobber it.
func (f *fc) stabilize(v absOperand) (absOperand, error) {
	if v.tn != nil {
		return v, nil
	}
	switch v.op.Mode {
	case s1.MImm:
		return v, nil
	case s1.MReg:
		if v.op.Base != s1.RegA && v.op.Base != s1.RegB && v.op.Base != s1.RegR2 && v.op.Base != s1.RegR3 {
			return v, nil
		}
	case s1.MMem, s1.MIdx:
		if v.op.Base != s1.RegR2 && v.op.Base != s1.RegR3 {
			return v, nil
		}
	default:
		return v, nil
	}
	t := f.newTN("tmp")
	f.emit(s1.OpMOV, tnOp(t), v, noOperand, 0, "")
	return tnOp(t), nil
}

func (f *fc) funRefOperand(x *tree.FunRef) (absOperand, error) {
	// A function value: prefer the direct descriptor when compiled,
	// otherwise late-bind through the symbol's function cell. Primitives
	// get callable stub functions that route through the primitive
	// gateway.
	if idx := f.c.M.FuncNamed(x.Name.Name); idx >= 0 {
		return conc(s1.Imm(s1.Ptr(s1.TagFunc, uint64(idx)))), nil
	}
	if prim.Lookup(x.Name) != nil {
		idx, err := f.c.primStub(x.Name.Name)
		if err != nil {
			return noOperand, err
		}
		return conc(s1.Imm(s1.Ptr(s1.TagFunc, uint64(idx)))), nil
	}
	sym := f.c.M.InternSym(x.Name.Name)
	return conc(s1.Imm(s1.Ptr(s1.TagSymbol, uint64(sym)))), nil
}

// emitIfValue compiles a conditional in value position.
func (f *fc) emitIfValue(x *tree.If) (absOperand, error) {
	elseL := f.label("else")
	joinL := f.label("join")
	res := f.newTN("if")
	target := x.Info().IsRep
	if err := f.emitTest(x.Test, elseL); err != nil {
		return noOperand, err
	}
	tv, err := f.emitCoercedTo(x.Then, target)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, tnOp(res), tv, noOperand, 0, "")
	f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
	f.emitLabel(elseL)
	ev, err := f.emitCoercedTo(x.Else, target)
	if err != nil {
		return noOperand, err
	}
	f.emit(s1.OpMOV, tnOp(res), ev, noOperand, 0, "")
	f.emitLabel(joinL)
	res.Touch(f.alloc.Now())
	return tnOp(res), nil
}

// emitEffect evaluates n for side effects only.
func (f *fc) emitEffect(n tree.Node) error {
	f.maybeEmitSpecFinds(n)
	switch x := n.(type) {
	case *tree.Literal, *tree.FunRef:
		return nil
	case *tree.VarRef:
		if !x.Var.Special {
			return nil // pure
		}
	case *tree.Progn:
		for _, form := range x.Forms {
			if err := f.emitEffect(form); err != nil {
				return err
			}
		}
		return nil
	case *tree.If:
		elseL := f.label("else")
		joinL := f.label("join")
		if err := f.emitTest(x.Test, elseL); err != nil {
			return err
		}
		if err := f.emitEffect(x.Then); err != nil {
			return err
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(joinL)), noOperand, noOperand, 0, "")
		f.emitLabel(elseL)
		if err := f.emitEffect(x.Else); err != nil {
			return err
		}
		f.emitLabel(joinL)
		return nil
	}
	_, err := f.emitNode(n)
	return err
}

// emitTest compiles n as a conditional: control falls through when the
// value is true and jumps to falseL otherwise. This is the JUMP
// representation of Table 3.
func (f *fc) emitTest(n tree.Node, falseL string) error {
	f.maybeEmitSpecFinds(n)
	switch x := n.(type) {
	case *tree.Literal:
		if !sexp.Truthy(x.Value) {
			f.emit(s1.OpJMP, conc(s1.Lbl(falseL)), noOperand, noOperand, 0, "")
		}
		return nil

	case *tree.Call:
		if fr, ok := x.Fn.(*tree.FunRef); ok {
			if done, err := f.emitPrimTest(fr.Name.Name, x, falseL); done || err != nil {
				return err
			}
		}

	case *tree.Progn:
		if len(x.Forms) > 0 {
			for _, form := range x.Forms[:len(x.Forms)-1] {
				if err := f.emitEffect(form); err != nil {
					return err
				}
			}
			return f.emitTest(x.Forms[len(x.Forms)-1], falseL)
		}
		f.emit(s1.OpJMP, conc(s1.Lbl(falseL)), noOperand, noOperand, 0, "")
		return nil

	case *tree.Lambda:
		// Function values are true; evaluate for the (allocation) effect.
		if _, err := f.emitNode(x); err != nil {
			return err
		}
		return nil
	}
	v, err := f.emitCoercedTo(n, tree.RepPOINTER)
	if err != nil {
		return err
	}
	f.emit(s1.OpJNIL, v, conc(s1.Lbl(falseL)), noOperand, 0, "")
	return nil
}

// emitPrimTest open-codes comparisons in test position; done=false means
// the caller should fall back to the generic truthiness test.
func (f *fc) emitPrimTest(name string, x *tree.Call, falseL string) (bool, error) {
	// Inverse jumps: fall through on true.
	type cmp struct {
		op  s1.Op // jump-if-false opcode
		rep tree.Rep
	}
	table := map[string]cmp{
		"=$f": {s1.OpFJNE, tree.RepSWFLO}, "<$f": {s1.OpFJGE, tree.RepSWFLO},
		">$f": {s1.OpFJLE, tree.RepSWFLO}, "<=$f": {s1.OpFJGT, tree.RepSWFLO},
		">=$f": {s1.OpFJLT, tree.RepSWFLO},
		"=&":   {s1.OpJNE, tree.RepSWFIX}, "<&": {s1.OpJGE, tree.RepSWFIX},
		">&": {s1.OpJLE, tree.RepSWFIX}, "<=&": {s1.OpJGT, tree.RepSWFIX},
		">=&": {s1.OpJLT, tree.RepSWFIX},
	}
	if c, ok := table[name]; ok && len(x.Args) == 2 {
		a, err := f.emitCoercedTo(x.Args[0], c.rep)
		if err != nil {
			return true, err
		}
		a, err = f.stabilize(a)
		if err != nil {
			return true, err
		}
		b, err := f.emitCoercedTo(x.Args[1], c.rep)
		if err != nil {
			return true, err
		}
		f.emit(c.op, a, b, conc(s1.Lbl(falseL)), 0, name)
		return true, nil
	}
	switch name {
	case "not", "null":
		if len(x.Args) != 1 {
			break
		}
		v, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return true, err
		}
		f.emit(s1.OpJNNIL, v, conc(s1.Lbl(falseL)), noOperand, 0, "(not x)")
		return true, nil
	case "eq":
		if len(x.Args) != 2 {
			break
		}
		a, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return true, err
		}
		a, err = f.stabilize(a)
		if err != nil {
			return true, err
		}
		b, err := f.emitCoercedTo(x.Args[1], tree.RepPOINTER)
		if err != nil {
			return true, err
		}
		f.emit(s1.OpJNEW, a, b, conc(s1.Lbl(falseL)), 0, "eq")
		return true, nil
	case "consp":
		if len(x.Args) != 1 {
			break
		}
		v, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return true, err
		}
		f.emit(s1.OpJNTAG, v, conc(s1.Lbl(falseL)), noOperand,
			int64(s1.TagCons), "consp")
		return true, nil
	case "zerop", "=", "<", ">", "<=", ">=":
		if len(x.Args) > 2 || len(x.Args) == 0 {
			break
		}
		sq := map[string]int64{"zerop": s1.SQNumEq, "=": s1.SQNumEq,
			"<": s1.SQLt, ">": s1.SQGt, "<=": s1.SQLe, ">=": s1.SQGe}[name]
		a, err := f.emitCoercedTo(x.Args[0], tree.RepPOINTER)
		if err != nil {
			return true, err
		}
		a, err = f.stabilize(a)
		if err != nil {
			return true, err
		}
		b := conc(s1.Imm(s1.FixnumWord(0)))
		if len(x.Args) == 2 {
			if b, err = f.emitCoercedTo(x.Args[1], tree.RepPOINTER); err != nil {
				return true, err
			}
			b, err = f.stabilize(b)
			if err != nil {
				return true, err
			}
		}
		f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), a, noOperand, 0, "")
		f.emit(s1.OpMOV, conc(s1.R(s1.RegB)), b, noOperand, 0, "")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, sq, name)
		f.emit(s1.OpJNIL, conc(s1.R(s1.RegA)), conc(s1.Lbl(falseL)), noOperand, 0, "")
		return true, nil
	}
	return false, nil
}

// emitTail compiles n in tail position: the emitted code ends with RET,
// TCALL or a jump.
func (f *fc) emitTail(n tree.Node) error {
	f.maybeEmitSpecFinds(n)
	switch x := n.(type) {
	case *tree.If:
		elseL := f.label("else")
		if err := f.emitTest(x.Test, elseL); err != nil {
			return err
		}
		if err := f.emitTail(x.Then); err != nil {
			return err
		}
		f.emitLabel(elseL)
		return f.emitTail(x.Else)

	case *tree.Progn:
		if len(x.Forms) == 0 {
			return f.emitReturnValue(conc(s1.Imm(s1.NilWord)), false)
		}
		for _, form := range x.Forms[:len(x.Forms)-1] {
			if err := f.emitEffect(form); err != nil {
				return err
			}
		}
		return f.emitTail(x.Forms[len(x.Forms)-1])

	case *tree.Call:
		return f.emitCallTail(x)
	}
	v, err := f.emitCoercedTo(n, tree.RepPOINTER)
	if err != nil {
		return err
	}
	return f.emitReturnValue(v, maybeUnsafe(n))
}

// emitReturnValue moves v into A, certifying potentially unsafe pointers
// ("pointers obtained from … values returned by procedures … are
// guaranteed safe"), and jumps to the epilogue.
func (f *fc) emitReturnValue(v absOperand, unsafe bool) error {
	f.emit(s1.OpMOV, conc(s1.R(s1.RegA)), v, noOperand, 0, "return value")
	if unsafe && f.c.Opts.PdlNumbers {
		// Only flonum pointers can be pdl numbers; the common case pays a
		// single tag-dispatch cycle.
		skip := f.label("safe")
		f.emit(s1.OpJNTAG, conc(s1.R(s1.RegA)), conc(s1.Lbl(skip)), noOperand,
			int64(s1.TagFlonum), "only flonums can be pdl numbers")
		f.emit(s1.OpCALLSQ, noOperand, noOperand, noOperand, s1.SQCertify,
			"certify returned pointer")
		f.emitLabel(skip)
	}
	f.emit(s1.OpJMP, conc(s1.Lbl(f.retLabel)), noOperand, noOperand, 0, "")
	return nil
}

// maybeUnsafe reports whether a node's pointer value might point into the
// stack (a pdl number or a caller-frame argument).
func maybeUnsafe(n tree.Node) bool {
	switch x := n.(type) {
	case *tree.Literal, *tree.FunRef, *tree.Lambda:
		return false
	case *tree.VarRef:
		return true // parameters and let variables may hold unsafe pointers
	case *tree.Setq:
		return maybeUnsafe(x.Value)
	case *tree.If:
		return maybeUnsafe(x.Then) || maybeUnsafe(x.Else)
	case *tree.Progn:
		return len(x.Forms) > 0 && maybeUnsafe(x.Forms[len(x.Forms)-1])
	case *tree.Call:
		if lam, ok := x.Fn.(*tree.Lambda); ok && lam.Strategy == tree.StrategyOpen {
			return maybeUnsafe(lam.Body)
		}
		if fr, ok := x.Fn.(*tree.FunRef); ok {
			p := prim.Lookup(fr.Name)
			if p != nil {
				// A primitive producing a fresh number boxed at the
				// conversion point: unsafe exactly when pdl-allocated,
				// which WantsPdlSlot decides; conservatively report the
				// numeric producers.
				return p.ResRep.Numeric() || fr.Name.Name == "identity"
			}
			return false // user-call results are certified by the callee
		}
		return false
	case *tree.Caseq:
		for _, cl := range x.Clauses {
			if maybeUnsafe(cl.Body) {
				return true
			}
		}
		return x.Default != nil && maybeUnsafe(x.Default)
	case *tree.ProgBody, *tree.Catcher:
		return true // conservative
	}
	return true
}

func (f *fc) emitCallTail(x *tree.Call) error {
	switch fn := x.Fn.(type) {
	case *tree.Lambda:
		if fn.Strategy == tree.StrategyOpen {
			unbind, err := f.emitOpenBindings(x, fn)
			if err != nil {
				return err
			}
			if unbind == 0 {
				return f.emitTail(fn.Body)
			}
			// Dynamic bindings must unwind before returning: compile the
			// body non-tail.
			v, err := f.emitCoercedTo(fn.Body, tree.RepPOINTER)
			if err != nil {
				return err
			}
			v, err = f.stabilize(v)
			if err != nil {
				return err
			}
			f.emit(s1.OpSPECUNBIND, noOperand, noOperand, noOperand,
				int64(unbind), "unbind let specials")
			f.dynSpecialsAdjust(-unbind)
			return f.emitReturnValue(v, maybeUnsafe(fn.Body))
		}

	case *tree.VarRef:
		if jb := f.jumpBlockFor(fn.Var); jb != nil {
			return f.emitJumpCall(x, fn.Var, jb)
		}

	case *tree.FunRef:
		if prim.Lookup(fn.Name) == nil && f.dynSpecials == 0 && f.catchDepth == 0 {
			// Tail call to a user function: "compiled as a simple
			// unconditional branch" — frame-reusing TCALL.
			if err := f.pushArgs(x.Args); err != nil {
				return err
			}
			op, err := f.funRefOperand(fn)
			if err != nil {
				return err
			}
			f.emit(s1.OpTCALL, op, noOperand, noOperand, int64(len(x.Args)),
				"tail call "+fn.Name.Name)
			return nil
		}
	}
	// Computed function in tail position.
	if _, okFR := x.Fn.(*tree.FunRef); !okFR {
		if _, okL := x.Fn.(*tree.Lambda); !okL && f.dynSpecials == 0 && f.catchDepth == 0 {
			fnv, err := f.emitCoercedTo(x.Fn, tree.RepPOINTER)
			if err != nil {
				return err
			}
			fnv, err = f.stabilize(fnv)
			if err != nil {
				return err
			}
			if err := f.pushArgs(x.Args); err != nil {
				return err
			}
			f.emit(s1.OpTCALL, fnv, noOperand, noOperand, int64(len(x.Args)),
				"tail call")
			return nil
		}
	}
	v, err := f.emitCall(x, false)
	if err != nil {
		return err
	}
	v, err = f.coerce(x, v, effectiveRep(x.Info().IsRep), tree.RepPOINTER)
	if err != nil {
		return err
	}
	return f.emitReturnValue(v, maybeUnsafe(x))
}

func (f *fc) pushArgs(args []tree.Node) error {
	ops := make([]absOperand, len(args))
	for i, a := range args {
		v, err := f.emitCoercedTo(a, tree.RepPOINTER)
		if err != nil {
			return err
		}
		if v, err = f.stabilize(v); err != nil {
			return err
		}
		ops[i] = v
	}
	for i, v := range ops {
		f.emit(s1.OpPUSH, v, noOperand, noOperand, 0,
			fmt.Sprintf("argument %d", i))
	}
	return nil
}

func (f *fc) dynSpecialsAdjust(d int) { f.dynSpecials += d }
