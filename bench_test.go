// Package repro's benchmark harness regenerates every experiment in
// EXPERIMENTS.md (the per-experiment index is in DESIGN.md §4). Each
// benchmark reports the simulator meters the corresponding paper claim is
// about: cycles, static MOV counts, heap (flonum) allocations, stack
// depth, deep-binding search steps. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func mustSys(b *testing.B, src string, opts *codegen.Options, consts map[string]sexp.Value) *core.System {
	b.Helper()
	sys := core.NewSystem(core.Options{Codegen: opts, Constants: consts})
	if err := sys.LoadString(src); err != nil {
		b.Fatal(err)
	}
	return sys
}

func mustCall(b *testing.B, sys *core.System, fn string, args ...sexp.Value) sexp.Value {
	b.Helper()
	v, err := sys.Call(fn, args...)
	if err != nil {
		b.Fatal(err)
	}
	return v
}

// --- E1: preliminary conversion of quadratic (§4.1, Table 2) ---

const quadraticSrc = `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))`

func BenchmarkE1_Conversion(b *testing.B) {
	forms, err := sexp.ReadAll(quadraticSrc)
	if err != nil {
		b.Fatal(err)
	}
	var nodes int
	for i := 0; i < b.N; i++ {
		c := convert.New()
		p, err := c.ConvertTopLevel(forms)
		if err != nil {
			b.Fatal(err)
		}
		nodes = tree.CountNodes(p.Defs[0].Lambda)
	}
	b.ReportMetric(float64(nodes), "tree-nodes")
}

// --- E2: boolean short-circuiting (§5) ---

func BenchmarkE2_ShortCircuit(b *testing.B) {
	src := `(defun choose (a b c) (if (and a (or b c)) 'one 'two))`
	sys := mustSys(b, src, nil, nil)
	sys.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, sys, "choose", sexp.T, sexp.Nil, sexp.T)
	}
	b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	b.ReportMetric(float64(sys.Stats().EnvAllocs), "closures-built")
}

// --- E3: tail recursion runs in constant stack (§2) ---

func BenchmarkE3_TailRecursion(b *testing.B) {
	src := `
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))
(defun expt-rec (x n)
  (if (zerop n) 1 (* x (expt-rec x (- n 1)))))`
	sys := mustSys(b, src, nil, nil)
	b.Run("tail-exptl", func(b *testing.B) {
		sys.ResetStats()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "exptl", sexp.Fixnum(2), sexp.Fixnum(1000), sexp.Fixnum(1))
		}
		b.ReportMetric(float64(sys.Stats().MaxStack), "max-stack-words")
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	})
	b.Run("nontail-baseline", func(b *testing.B) {
		sys.ResetStats()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "expt-rec", sexp.Fixnum(2), sexp.Fixnum(1000))
		}
		b.ReportMetric(float64(sys.Stats().MaxStack), "max-stack-words")
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	})
}

// --- E4: the RT-register dance (§6.1) ---

const kernelSrc = `
(defun kernel ()
  (let ((n 16))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))`

func matrixConsts(n int) map[string]sexp.Value {
	mk := func() *sexp.FloatArray {
		fa := sexp.NewFloatArray([]int{n, n})
		for i := range fa.Data {
			fa.Data[i] = float64(i%7) * 0.25
		}
		return fa
	}
	return map[string]sexp.Value{
		"aarr": mk(), "barr": mk(), "carr": mk(),
		"zarr":   sexp.NewFloatArray([]int{n, n}),
		"econst": sexp.Flonum(1.5),
	}
}

func BenchmarkE4_RTRegisters(b *testing.B) {
	run := func(b *testing.B, opts *codegen.Options) {
		sys := mustSys(b, kernelSrc, opts, matrixConsts(16))
		movs, err := sys.StaticMOVs("kernel")
		if err != nil {
			b.Fatal(err)
		}
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "kernel")
		}
		b.ReportMetric(float64(movs), "static-MOVs")
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	}
	b.Run("tnbind", func(b *testing.B) { run(b, nil) })
	b.Run("naive-alloc", func(b *testing.B) {
		o := codegen.DefaultOptions()
		o.UseTN = false
		run(b, &o)
	})
}

// --- E5: representation analysis (§6.2) ---

func BenchmarkE5_Representation(b *testing.B) {
	src := `
(defun dot (n)
  (let ((acc 0.0) (i 0))
    (prog ()
     loop
      (if (>=& i n) (return nil) nil)
      (setq acc (+$f acc (*$f (aref$f aarr 0 i) (aref$f barr 0 i))))
      (setq i (+& i 1))
      (go loop))
    acc))`
	run := func(b *testing.B, opts *codegen.Options) {
		sys := mustSys(b, src, opts, matrixConsts(16))
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "dot", sexp.Fixnum(16))
		}
		n := float64(b.N)
		b.ReportMetric(float64(sys.Stats().Cycles)/n, "cycles/op")
		b.ReportMetric(float64(sys.Stats().FlonumAllocs)/n, "flonum-allocs/op")
	}
	b.Run("rep-analysis", func(b *testing.B) { run(b, nil) })
	b.Run("pointers-only", func(b *testing.B) {
		o := codegen.DefaultOptions()
		o.RepAnalysis = false
		o.PdlNumbers = false
		run(b, &o)
	})
}

// --- E6: pdl numbers (§6.3) ---

func BenchmarkE6_PdlNumbers(b *testing.B) {
	src := `
(defun observe (a b) nil)
(defun poly (x)
  (let ((d (+$f x 1.0)) (e (*$f x x)))
    (observe d e)
    (max$f d e)))`
	run := func(b *testing.B, opts *codegen.Options) {
		sys := mustSys(b, src, opts, nil)
		arg := sexp.Flonum(2.5)
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "poly", arg)
		}
		n := float64(b.N)
		b.ReportMetric(float64(sys.Stats().FlonumAllocs)/n, "flonum-allocs/op")
		b.ReportMetric(float64(sys.Stats().Cycles)/n, "cycles/op")
		b.ReportMetric(float64(sys.Stats().Certifies)/n, "certifies/op")
	}
	b.Run("pdl-numbers", func(b *testing.B) { run(b, nil) })
	b.Run("heap-only", func(b *testing.B) {
		o := codegen.DefaultOptions()
		o.PdlNumbers = false
		run(b, &o)
	})
}

// --- E7: the whole §7 example ---

func BenchmarkE7_Testfn(b *testing.B) {
	src := `
(defun frotz (a b c) nil)
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))`
	sys := mustSys(b, src, nil, nil)
	arg := sexp.Flonum(0.5)
	sys.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, sys, "testfn", arg)
	}
	n := float64(b.N)
	b.ReportMetric(float64(sys.Stats().Cycles)/n, "cycles/op")
	b.ReportMetric(float64(sys.Stats().FlonumAllocs)/n, "flonum-allocs/op")
}

// --- E8: numeric code quality — compiled vs interpreted vs native ---

func BenchmarkE8_NumericQuality(b *testing.B) {
	const n = 64
	src := `
(defun dot (n)
  (let ((acc 0.0) (i 0))
    (prog ()
     loop
      (if (>=& i n) (return nil) nil)
      (setq acc (+$f acc (*$f (aref$f aarr 0 i) (aref$f barr 0 i))))
      (setq i (+& i 1))
      (go loop))
    acc))`
	consts := matrixConsts(n)
	b.Run("compiled", func(b *testing.B) {
		sys := mustSys(b, src, nil, consts)
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "dot", sexp.Fixnum(n))
		}
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N)/n, "cycles/element")
	})
	b.Run("interpreted", func(b *testing.B) {
		// The interpreter works on host arrays via generic aref$f.
		isrc := `
(defun idot (a c n)
  (let ((acc 0.0) (i 0))
    (prog ()
     loop
      (if (>=& i n) (return nil) nil)
      (setq acc (+$f acc (*$f (aref$f a 0 i) (aref$f c 0 i))))
      (setq i (+& i 1))
      (go loop))
    acc))`
		forms, _ := sexp.ReadAll(isrc)
		cv := convert.New()
		p, err := cv.ConvertTopLevel(forms)
		if err != nil {
			b.Fatal(err)
		}
		in := interp.New()
		if _, err := in.LoadProgram(p); err != nil {
			b.Fatal(err)
		}
		a := consts["aarr"]
		c := consts["barr"]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.CallNamed(sexp.Intern("idot"), a, c, sexp.Fixnum(n)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("native-go", func(b *testing.B) {
		a := consts["aarr"].(*sexp.FloatArray).Data
		c := consts["barr"].(*sexp.FloatArray).Data
		var acc float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acc = 0
			for k := 0; k < n; k++ {
				acc += a[k] * c[k]
			}
		}
		_ = acc
	})
}

// --- E9: deep-binding lookup caching (§4.4) ---

func BenchmarkE9_DeepBinding(b *testing.B) {
	// Read a special repeatedly under k live unrelated bindings.
	mkSrc := func(k int) string {
		src := "(defvar *target* 7)\n"
		// Build k nested binders.
		open, close := "", ""
		for i := 0; i < k; i++ {
			open += fmt.Sprintf("(let ((*pad%d* %d)) ", i, i)
			close += ")"
		}
		src += `
(defun reader (n)
  (let ((acc 0) (i 0))
    (prog ()
     loop
      (if (>= i n) (return acc) nil)
      (setq acc (+ acc *target*))
      (setq i (+ i 1))
      (go loop))))
(defun run (n) ` + open + `(reader n)` + close + ")"
		return src
	}
	for _, k := range []int{4, 64, 512} {
		src := mkSrc(k)
		b.Run(fmt.Sprintf("cached/depth-%d", k), func(b *testing.B) {
			sys := mustSys(b, src, nil, nil)
			sys.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, sys, "run", sexp.Fixnum(100))
			}
			b.ReportMetric(float64(sys.Stats().SpecialSearchSteps)/float64(b.N), "probe-steps/op")
			b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
		})
		b.Run(fmt.Sprintf("uncached/depth-%d", k), func(b *testing.B) {
			o := codegen.DefaultOptions()
			o.SpecialCaching = false
			sys := mustSys(b, src, &o, nil)
			sys.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mustCall(b, sys, "run", sexp.Fixnum(100))
			}
			b.ReportMetric(float64(sys.Stats().SpecialSearchSteps)/float64(b.N), "probe-steps/op")
			b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
		})
	}
}

// --- E10: phase structure / compile-time costs (Table 1) ---

func BenchmarkE10_PhaseCosts(b *testing.B) {
	src := quadraticSrc + `
(defun frotz (a b c) nil)
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))`
	configs := []struct {
		name string
		mk   func() codegen.Options
	}{
		{"all", codegen.DefaultOptions},
		{"no-optimize", func() codegen.Options {
			o := codegen.DefaultOptions()
			o.Optimize = false
			return o
		}},
		{"no-machine-phases", func() codegen.Options {
			return codegen.Options{Optimize: true}
		}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := cfg.mk()
				sys := core.NewSystem(core.Options{Codegen: &o})
				if err := sys.LoadString(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: beta-conversion engine throughput (§5) ---

func BenchmarkE11_BetaConversion(b *testing.B) {
	src := `(lambda (a b c d)
	  (let ((x (+ a 1)))
	    (let ((y x))
	      (let ((f (lambda (q) (+ q y))))
	        (if (and a (or b (and c d))) (f x) (f y))))))`
	form := mustRead(src)
	applied := 0
	for i := 0; i < b.N; i++ {
		c := convert.New()
		n, err := c.ConvertForm(form)
		if err != nil {
			b.Fatal(err)
		}
		o := opt.New(opt.DefaultOptions(), nil)
		o.Optimize(n)
		applied = 0
		for _, v := range o.Applied {
			applied += v
		}
	}
	b.ReportMetric(float64(applied), "transformations")
}

// --- Gabriel-style benchmarks: TAK and FIB, compiled vs interpreted ---

const takSrc = `
(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))`

func BenchmarkGabrielTak(b *testing.B) {
	b.Run("compiled", func(b *testing.B) {
		sys := mustSys(b, takSrc, nil, nil)
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "tak", sexp.Fixnum(12), sexp.Fixnum(8), sexp.Fixnum(4))
		}
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	})
	b.Run("interpreted", func(b *testing.B) {
		forms, _ := sexp.ReadAll(takSrc)
		c := convert.New()
		p, _ := c.ConvertTopLevel(forms)
		in := interp.New()
		if _, err := in.LoadProgram(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.CallNamed(sexp.Intern("tak"),
				sexp.Fixnum(12), sexp.Fixnum(8), sexp.Fixnum(4)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGabrielFib(b *testing.B) {
	b.Run("compiled", func(b *testing.B) {
		sys := mustSys(b, takSrc, nil, nil)
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "fib", sexp.Fixnum(15))
		}
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
	})
	b.Run("interpreted", func(b *testing.B) {
		forms, _ := sexp.ReadAll(takSrc)
		c := convert.New()
		p, _ := c.ConvertTopLevel(forms)
		in := interp.New()
		if _, err := in.LoadProgram(p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := in.CallNamed(sexp.Intern("fib"), sexp.Fixnum(15)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Compile pipeline: throughput and cache (parallel middle end) ---

// genCompileCorpus builds n distinct defuns by cycling body templates and
// varying embedded constants, so every function is a separate compilation
// unit with real optimizer work (lets to substitute, boolean forms to
// short-circuit, loops, float chains).
func genCompileCorpus(n int) string {
	templates := []string{
		`(defun gen-%d (x y)
  (let ((a (+ x %d)) (b (* y %d)))
    (if (and (> a 0) (or (< b %d) (> x y)))
        (+ (* a a) (* b b))
        (- (* a b) %d))))`,
		`(defun gen-%d (x)
  (let ((d (- (* x x) (* 4.0 x %d.0))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- x) 2.0)))
          (t (let ((sd (sqrt d))) (list (+ x sd) (- x %d.0) (* sd %d.0)))))))`,
		`(defun gen-%d (n)
  (prog (i s)
    (setq i 0 s %d)
   loop
    (if (> i n) (return s) nil)
    (setq s (+ s (* i %d)) i (+ i 1))
    (go loop)))`,
		`(defun gen-%d (x)
  (let ((a (+$f x %d.0)) (b (*$f x x)))
    (sqrt$f (+$f (*$f a a) (+$f (*$f b b) %d.0)))))`,
		`(defun gen-%d (k)
  (caseq k ((1 2 3) (+ k %d)) (10 (* k %d)) (t (- k %d))))`,
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		t := templates[i%len(templates)]
		switch strings.Count(t, "%d") - 1 {
		case 2:
			fmt.Fprintf(&sb, t, i, i+1, i+2)
		case 3:
			fmt.Fprintf(&sb, t, i, i+1, i+2, i+3)
		default:
			fmt.Fprintf(&sb, t, i, i+1, i+2, i+3, i+4)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// BenchmarkCompileThroughput compiles N distinct defuns cold, comparing
// the sequential middle end (Jobs=1) against the worker pool (Jobs=0 =
// GOMAXPROCS). Both modes produce byte-identical machine images (see
// core's TestParallelListingsMatchSequential); only wall clock differs.
func BenchmarkCompileThroughput(b *testing.B) {
	const nForms = 64
	src := genCompileCorpus(nForms)
	for _, mode := range []struct {
		name   string
		jobs   int
		traced bool
	}{{"sequential", 1, false}, {"parallel", 0, false}, {"parallel-traced", 0, true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.jobs == 0 && runtime.GOMAXPROCS(0) == 1 {
				// With one scheduler thread the worker pool degenerates to
				// sequential compilation plus channel overhead; the number
				// would not measure parallel speedup, so don't record one.
				b.Skip("GOMAXPROCS=1: parallel mode cannot demonstrate speedup")
			}
			for i := 0; i < b.N; i++ {
				o := core.Options{Jobs: mode.jobs}
				if mode.traced {
					o.Obs = obs.NewRecorder()
				}
				sys := core.NewSystem(o)
				if err := sys.LoadString(src); err != nil {
					b.Fatal(err)
				}
				if mode.traced && sys.Obs.CountSpans("", "optimize") != nForms {
					b.Fatal("traced run lost spans")
				}
			}
			b.ReportMetric(float64(nForms)*float64(b.N)/b.Elapsed().Seconds(), "forms/sec")
		})
	}
}

// BenchmarkCompileCached reloads the same source into one system with the
// content-addressed cache on: after the warm-up load every definition
// hits, skipping the middle end and code generation entirely.
func BenchmarkCompileCached(b *testing.B) {
	const nForms = 64
	src := genCompileCorpus(nForms)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := core.NewSystem(core.Options{Jobs: 1})
			if err := sys.LoadString(src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(nForms)*float64(b.N)/b.Elapsed().Seconds(), "forms/sec")
	})
	b.Run("cached", func(b *testing.B) {
		sys := core.NewSystem(core.Options{Jobs: 1, Cache: true})
		if err := sys.LoadString(src); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sys.LoadString(src); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		st := sys.Stats()
		total := st.CompileCacheHits + st.CompileCacheMisses
		b.ReportMetric(float64(st.CompileCacheHits)/float64(total), "hit-rate")
		b.ReportMetric(float64(nForms)*float64(b.N)/b.Elapsed().Seconds(), "forms/sec")
	})
}

// --- Observability: flight-recorder overhead (DESIGN.md §13) ---

// BenchmarkObsOverhead measures the cost of the always-on flight
// recorder on a GC- and tier-active kernel: each run conses garbage
// under a small heap budget so every collection and promotion lands an
// event in the ring. The acceptance budget is ≤3% over the recorder-off
// baseline; in practice the cost is a nil-check plus an atomic store on
// events that are orders of magnitude rarer than instructions.
func BenchmarkObsOverhead(b *testing.B) {
	const churnSrc = `
(defun churn (n)
  (prog (i)
    (setq i 0)
   loop
    (cons i i)
    (setq i (+ i 1))
    (if (< i n) (go loop))
    (return i)))`
	run := func(b *testing.B, flight *obs.Flight) {
		sys := core.NewSystem(core.Options{
			MaxHeapWords: 4096, HotThreshold: -1, Flight: flight,
		})
		if err := sys.LoadString(churnSrc); err != nil {
			b.Fatal(err)
		}
		sys.ResetStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mustCall(b, sys, "churn", sexp.Fixnum(10000))
		}
		b.ReportMetric(float64(sys.Stats().Cycles)/float64(b.N), "cycles/op")
		if flight != nil {
			b.ReportMetric(float64(flight.Len())/float64(b.N), "events/op")
		}
	}
	b.Run("recorder-off", func(b *testing.B) { run(b, nil) })
	b.Run("recorder-on", func(b *testing.B) {
		run(b, obs.NewFlight(obs.DefaultFlightSize))
	})
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
