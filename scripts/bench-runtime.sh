#!/usr/bin/env bash
# Regenerates BENCH_runtime.json from the BenchmarkRuntime suite so the
# perf trajectory is reproducible instead of hand-edited.
#
# Every kernel runs in the three engine configurations the suite defines
# (tiered / -notier / -nofuse -notier) with a FIXED iteration count per
# run (-benchtime=Nx) and COUNT repetitions, all in one `go test`
# invocation; the recorded number is the per-configuration median. The
# headline ratio, tier_speedup, is tiered vs -notier from that same
# invocation — shared-container wall-clock drifts far too much for
# absolute steps/sec to be comparable across invocations, let alone
# across BENCH_runtime.json entries.
#
# Usage: scripts/bench-runtime.sh [-o out.json]
#   ITERS=300 COUNT=5 scripts/bench-runtime.sh   # the defaults
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS=${ITERS:-300}
COUNT=${COUNT:-5}
OUT=BENCH_runtime.json
if [ "${1:-}" = "-o" ]; then OUT=$2; fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo ";; running BenchmarkRuntime: ${COUNT}x runs of ${ITERS} fixed iterations per kernel/config" >&2
go test -run xxx -bench BenchmarkRuntime -benchtime="${ITERS}x" -count="$COUNT" \
  ./internal/s1/ | tee "$RAW" >&2

CPU=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
CORES=$(nproc 2>/dev/null || echo 1)
GOMAX=${GOMAXPROCS:-$CORES}
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
DATE=$(date +%F)

{
cat <<HEADER
{
  "date": "$DATE",
  "benchmark": "scripts/bench-runtime.sh: go test -run xxx -bench BenchmarkRuntime -benchtime=${ITERS}x -count=$COUNT ./internal/s1/",
  "metric": "steps/sec = simulator instructions retired per wall-clock second; per-configuration median of $COUNT fixed-iteration runs from one invocation",
  "environment": {
    "cpu": "$CPU",
    "cores": $CORES,
    "gomaxprocs": $GOMAX,
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "note": "all configurations re-measured in this invocation; absolute steps/sec depend on shared-container load and are NOT comparable to earlier BENCH_runtime.json entries, only the within-invocation ratios are"
  },
  "configurations": {
    "nofuse": "plain pre-decoded dispatch (-nofuse -notier)",
    "notier": "static up-to-4 superinstruction fusion, tier disabled (-notier); the baseline tier_speedup divides by",
    "tiered": "the default engine: static fusion plus hot-function promotion to trace re-fusion and lowered blocks"
  },
HEADER

awk '
/^BenchmarkRuntime\// {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  kernel = parts[2]; cfg = parts[3]
  v = 0
  for (i = 2; i <= NF; i++) if ($i == "steps/sec") v = $(i-1) + 0
  if (v <= 0) next
  key = kernel SUBSEP cfg
  cnt[key]++
  vals[key, cnt[key]] = v
  if (!(kernel in seen)) { seen[kernel] = 1; order[++nk] = kernel }
}
function median(kernel, cfg,   key, m, i, j, t, a) {
  key = kernel SUBSEP cfg
  m = cnt[key]
  if (m == 0) return 0
  for (i = 1; i <= m; i++) a[i] = vals[key, i]
  for (i = 1; i < m; i++)
    for (j = i + 1; j <= m; j++)
      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t }
  if (m % 2) return a[(m + 1) / 2]
  return (a[m / 2] + a[m / 2 + 1]) / 2
}
END {
  desc["exptl"] = "tail-recursive exponentiation driver, fixnum fast path"
  desc["quadratic"] = "flonum quadratic solver, list results, GC threshold 8192"
  desc["testfn"] = "the §7 testfn with &optional dispatch and pdl floats, GC threshold 8192"
  desc["matrix-subscript"] = "§6.1 triple loop over 16x16 float arrays, Table-4 subscript code"
  desc["gc-cons"] = "cons-heavy list churn under GC threshold 4096 (not a paper kernel)"
  desc["poly-call"] = "polymorphic + late-bound calls with a post-warm-up rebind; stresses call inline caches"
  printf "  \"kernels\": {\n"
  logsum = 0; n = 0
  for (k = 1; k <= nk; k++) {
    kernel = order[k]
    nofuse = median(kernel, "nofuse")
    notier = median(kernel, "notier")
    tiered = median(kernel, "tiered")
    sp = notier > 0 ? tiered / notier : 0
    if (sp > 0) { logsum += log(sp); n++ }
    printf "    \"%s\": {\n", kernel
    printf "      \"description\": \"%s\",\n", (kernel in desc ? desc[kernel] : kernel)
    printf "      \"nofuse_steps_per_sec\": %d,\n", nofuse
    printf "      \"notier_steps_per_sec\": %d,\n", notier
    printf "      \"tiered_steps_per_sec\": %d,\n", tiered
    printf "      \"tier_speedup\": %.2f\n", sp
    printf "    }%s\n", (k < nk ? "," : "")
  }
  printf "  },\n"
  printf "  \"geomean_tier_speedup\": %.2f,\n", (n ? exp(logsum / n) : 0)
}' "$RAW"

cat <<'FOOTER'
  "acceptance_threshold": 1.5,
  "what_changed": [
    "tiered execution (DESIGN.md §12): always-on per-function invocation counters promote hot functions, re-fusing the whole function into one lowered-op trace (internal/s1/tier.go); -notier disables, -hot-threshold tunes",
    "trace re-fusion lifts the static 4-instruction fusion cap: blocks split only at real jump targets plus profile-observed landing PCs, and jumps whose target lies inside the function continue in the executor without returning to the dispatch loop",
    "block lowering keeps step/cycle/MOV meters in Go locals, spilling to Machine state only at trace exits, calls, allocation sites and error paths, with exact -max-steps accounting and bounded interrupt latency (blockChunk)",
    "SQ inline lowering binds hot CALLSQ routines (arith fastNum, CONS, CAR/CDR, special read/write) directly into the trace; hot CALL/TCALL sites get invalidation-checked inline caches for their resolved entry PC"
  ]
}
FOOTER
} > "$OUT"

echo ";; wrote $OUT" >&2
