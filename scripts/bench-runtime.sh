#!/usr/bin/env bash
# Regenerates BENCH_runtime.json from the BenchmarkRuntime suite so the
# perf trajectory is reproducible instead of hand-edited.
#
# Every kernel runs in the three engine configurations the suite defines
# (tiered / -notier / -nofuse -notier) with a FIXED iteration count per
# run (-benchtime=Nx) and COUNT repetitions, all in one `go test`
# invocation; the recorded number is the per-configuration median. The
# headline ratio, tier_speedup, is tiered vs -notier from that same
# invocation — shared-container wall-clock drifts far too much for
# absolute steps/sec to be comparable across invocations, let alone
# across BENCH_runtime.json entries.
#
# Usage: scripts/bench-runtime.sh [-o out.json]
#   ITERS=300 COUNT=5 scripts/bench-runtime.sh   # the defaults
set -euo pipefail
cd "$(dirname "$0")/.."

ITERS=${ITERS:-300}
COUNT=${COUNT:-5}
OUT=BENCH_runtime.json
if [ "${1:-}" = "-o" ]; then OUT=$2; fi

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo ";; running BenchmarkRuntime: ${COUNT}x runs of ${ITERS} fixed iterations per kernel/config" >&2
go test -run xxx -bench BenchmarkRuntime -benchtime="${ITERS}x" -count="$COUNT" \
  ./internal/s1/ | tee "$RAW" >&2

CPU=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
CORES=$(nproc 2>/dev/null || echo 1)
GOMAX=${GOMAXPROCS:-$CORES}
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
DATE=$(date +%F)

{
cat <<HEADER
{
  "date": "$DATE",
  "benchmark": "scripts/bench-runtime.sh: go test -run xxx -bench BenchmarkRuntime -benchtime=${ITERS}x -count=$COUNT ./internal/s1/",
  "metric": "steps/sec = simulator instructions retired per wall-clock second; per-configuration median of $COUNT fixed-iteration runs from one invocation",
  "environment": {
    "cpu": "$CPU",
    "cores": $CORES,
    "gomaxprocs": $GOMAX,
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "note": "all configurations re-measured in this invocation; absolute steps/sec depend on shared-container load and are NOT comparable to earlier BENCH_runtime.json entries, only the within-invocation ratios are"
  },
  "configurations": {
    "nofuse": "plain pre-decoded dispatch (-nofuse -notier)",
    "notier": "static up-to-4 superinstruction fusion, tier disabled (-notier); the baseline tier_speedup divides by",
    "tiered": "the default engine: static fusion plus hot-function promotion to trace re-fusion and lowered blocks"
  },
HEADER

awk '
/^BenchmarkRuntime\// {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  kernel = parts[2]; cfg = parts[3]
  v = 0
  for (i = 2; i <= NF; i++) if ($i == "steps/sec") v = $(i-1) + 0
  if (v <= 0) next
  key = kernel SUBSEP cfg
  cnt[key]++
  vals[key, cnt[key]] = v
  if (!(kernel in seen)) { seen[kernel] = 1; order[++nk] = kernel }
}
function median(kernel, cfg,   key, m, i, j, t, a) {
  key = kernel SUBSEP cfg
  m = cnt[key]
  if (m == 0) return 0
  for (i = 1; i <= m; i++) a[i] = vals[key, i]
  for (i = 1; i < m; i++)
    for (j = i + 1; j <= m; j++)
      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t }
  if (m % 2) return a[(m + 1) / 2]
  return (a[m / 2] + a[m / 2 + 1]) / 2
}
END {
  desc["exptl"] = "tail-recursive exponentiation driver, fixnum fast path"
  desc["quadratic"] = "flonum quadratic solver, list results, GC threshold 8192"
  desc["testfn"] = "the §7 testfn with &optional dispatch and pdl floats, GC threshold 8192"
  desc["matrix-subscript"] = "§6.1 triple loop over 16x16 float arrays, Table-4 subscript code"
  desc["gc-cons"] = "list churn over a 20k-cons resident set, GC threshold 4096 (not a paper kernel; BENCH_gc.json isolates its collector cost)"
  desc["poly-call"] = "polymorphic + late-bound calls with a post-warm-up rebind; stresses call inline caches"
  printf "  \"kernels\": {\n"
  logsum = 0; n = 0
  for (k = 1; k <= nk; k++) {
    kernel = order[k]
    nofuse = median(kernel, "nofuse")
    notier = median(kernel, "notier")
    tiered = median(kernel, "tiered")
    sp = notier > 0 ? tiered / notier : 0
    if (sp > 0) { logsum += log(sp); n++ }
    printf "    \"%s\": {\n", kernel
    printf "      \"description\": \"%s\",\n", (kernel in desc ? desc[kernel] : kernel)
    printf "      \"nofuse_steps_per_sec\": %d,\n", nofuse
    printf "      \"notier_steps_per_sec\": %d,\n", notier
    printf "      \"tiered_steps_per_sec\": %d,\n", tiered
    printf "      \"tier_speedup\": %.2f\n", sp
    printf "    }%s\n", (k < nk ? "," : "")
  }
  printf "  },\n"
  printf "  \"geomean_tier_speedup\": %.2f,\n", (n ? exp(logsum / n) : 0)
}' "$RAW"

cat <<'FOOTER'
  "acceptance_threshold": 1.5,
  "what_changed": [
    "tiered execution (DESIGN.md §12): always-on per-function invocation counters promote hot functions, re-fusing the whole function into one lowered-op trace (internal/s1/tier.go); -notier disables, -hot-threshold tunes",
    "trace re-fusion lifts the static 4-instruction fusion cap: blocks split only at real jump targets plus profile-observed landing PCs, and jumps whose target lies inside the function continue in the executor without returning to the dispatch loop",
    "block lowering keeps step/cycle/MOV meters in Go locals, spilling to Machine state only at trace exits, calls, allocation sites and error paths, with exact -max-steps accounting and bounded interrupt latency (blockChunk)",
    "SQ inline lowering binds hot CALLSQ routines (arith fastNum, CONS, CAR/CDR, special read/write) directly into the trace; hot CALL/TCALL sites get invalidation-checked inline caches for their resolved entry PC"
  ]
}
FOOTER
} > "$OUT"

echo ";; wrote $OUT" >&2

# ---------------------------------------------------------------------
# BENCH_gc.json: the generational-collector metrics (DESIGN.md §15).
# BenchmarkGC runs the gc-cons kernel with generations on (gen) and off
# (nogen) in one invocation; gen_speedup is the same-invocation
# steps/sec ratio, and the pause percentiles compare minor collections
# against the full collections they replace. Medians over $COUNT runs,
# like the runtime suite above.

OUT_GC=BENCH_gc.json
RAW_GC=$(mktemp)
trap 'rm -f "$RAW" "$RAW_GC"' EXIT

echo ";; running BenchmarkGC: ${COUNT}x runs of ${ITERS} fixed iterations, gen vs nogen" >&2
go test -run xxx -bench BenchmarkGC -benchtime="${ITERS}x" -count="$COUNT" \
  ./internal/s1/ | tee "$RAW_GC" >&2

{
cat <<HEADER
{
  "date": "$DATE",
  "benchmark": "scripts/bench-runtime.sh: go test -run xxx -bench BenchmarkGC -benchtime=${ITERS}x -count=$COUNT ./internal/s1/",
  "metric": "gc-cons kernel (20k-cons resident set + per-call churn, GC threshold 4096); per-configuration median of $COUNT fixed-iteration runs from one invocation",
  "environment": {
    "cpu": "$CPU",
    "cores": $CORES,
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "note": "gen and nogen are measured in the same invocation; only the within-invocation ratio is meaningful across BENCH_gc.json entries"
  },
  "configurations": {
    "gen": "generational default: threshold collections are minor (nursery + remembered set), escalating on promotion pressure",
    "nogen": "-gc-nogen: every threshold collection is a full mark-sweep (the pre-generational collector)"
  },
HEADER

awk '
/^BenchmarkGC\// {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  cfg = parts[2]
  for (i = 3; i <= NF; i++) {
    v = $(i-1) + 0
    key = cfg SUBSEP $i
    if ($i ~ /^(steps\/sec|minors|fulls|promoted-words|minor-p50-us|minor-p99-us|full-p50-us|full-p99-us)$/) {
      cnt[key]++
      vals[key, cnt[key]] = v
    }
  }
}
function median(cfg, met,   key, m, i, j, t, a) {
  key = cfg SUBSEP met
  m = cnt[key]
  if (m == 0) return 0
  for (i = 1; i <= m; i++) a[i] = vals[key, i]
  for (i = 1; i < m; i++)
    for (j = i + 1; j <= m; j++)
      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t }
  if (m % 2) return a[(m + 1) / 2]
  return (a[m / 2] + a[m / 2 + 1]) / 2
}
function emit(cfg, last) {
  printf "    \"%s\": {\n", cfg
  printf "      \"steps_per_sec\": %d,\n", median(cfg, "steps/sec")
  printf "      \"minor_collections\": %d,\n", median(cfg, "minors")
  printf "      \"full_collections\": %d,\n", median(cfg, "fulls")
  printf "      \"promoted_words\": %d,\n", median(cfg, "promoted-words")
  printf "      \"minor_pause_p50_us\": %.2f,\n", median(cfg, "minor-p50-us")
  printf "      \"minor_pause_p99_us\": %.2f,\n", median(cfg, "minor-p99-us")
  printf "      \"full_pause_p50_us\": %.2f,\n", median(cfg, "full-p50-us")
  printf "      \"full_pause_p99_us\": %.2f\n", median(cfg, "full-p99-us")
  printf "    }%s\n", (last ? "" : ",")
}
END {
  printf "  \"gc_cons\": {\n"
  emit("gen", 0)
  emit("nogen", 1)
  printf "  },\n"
  base = median("nogen", "steps/sec")
  sp = 0; if (base > 0) sp = median("gen", "steps/sec") / base
  printf "  \"gen_speedup\": %.2f,\n", sp
  fp = median("nogen", "full-p50-us")
  pr = 0; if (fp > 0) pr = median("gen", "minor-p50-us") / fp
  printf "  \"minor_p50_over_full_p50\": %.3f,\n", pr
}' "$RAW_GC"

cat <<'FOOTER'
  "acceptance_threshold": 1.2,
  "what_changed": [
    "generational GC (DESIGN.md §15): blocks are born young; threshold collections mark from roots plus the card-table remembered set, sweep only the nursery, and promote survivors in place by their sticky mark",
    "collections escalate to full on -gc-nogen, on promotion pressure (8x threshold tenured since the last full), or after a minor overruns -gc-minor-budget",
    "the mark phase is an explicit worklist (no Go recursion), and emptied big-block free-list size classes are pruned",
    "machine-arena reuse in slcd: request machines recycle heap/record/stack/card storage through a sync.Pool of arenas (slcd_arena_recycles_total)"
  ]
}
FOOTER
} > "$OUT_GC"

echo ";; wrote $OUT_GC" >&2

# ---------------------------------------------------------------------
# BENCH_sched.json: the M:N scheduler and resident-session metrics
# (DESIGN.md §16). BenchmarkScheduler measures (a) resident sessions —
# creation rate and the marginal heap bytes a parked session pins — and
# (b) end-to-end /run throughput under the three scheduler modes; the
# recorded ratios are on/off (admission + safepoint-hook overhead) and
# stress/off (a forced yield at every safepoint, the park/resume
# worst case). Medians over $COUNT runs, same as the suites above.

OUT_SCHED=BENCH_sched.json
RAW_SCHED=$(mktemp)
trap 'rm -f "$RAW" "$RAW_GC" "$RAW_SCHED"' EXIT

echo ";; running BenchmarkScheduler: ${COUNT}x runs of ${ITERS} fixed iterations per sub-benchmark" >&2
go test -run xxx -bench BenchmarkScheduler -benchtime="${ITERS}x" -count="$COUNT" \
  ./internal/daemon/ | tee "$RAW_SCHED" >&2

{
cat <<HEADER
{
  "date": "$DATE",
  "benchmark": "scripts/bench-runtime.sh: go test -run xxx -bench BenchmarkScheduler -benchtime=${ITERS}x -count=$COUNT ./internal/daemon/",
  "metric": "resident-session cost and /run throughput per scheduler mode; per-configuration median of $COUNT fixed-iteration runs from one invocation",
  "environment": {
    "cpu": "$CPU",
    "cores": $CORES,
    "goos": "$GOOS",
    "goarch": "$GOARCH",
    "note": "all modes re-measured in this invocation; only the within-invocation ratios are comparable across BENCH_sched.json entries"
  },
  "configurations": {
    "off": "legacy direct path: worker semaphore + bounded queue, no preemption, no gas",
    "on": "M:N scheduler: safepoint preemption, DRR fair queuing, per-tenant gas",
    "stress": "scheduler with a forced yield at every safepoint (park/resume worst case)"
  },
HEADER

awk '
/^BenchmarkScheduler\// {
  name = $1; sub(/-[0-9]+$/, "", name)
  split(name, parts, "/")
  cfg = (parts[2] == "requests") ? parts[3] : parts[2]
  for (i = 3; i <= NF; i++) {
    if ($i ~ /^(sessions\/sec|bytes\/session|req\/sec)$/) {
      v = $(i-1) + 0
      key = cfg SUBSEP $i
      cnt[key]++
      vals[key, cnt[key]] = v
    }
  }
}
function median(cfg, met,   key, m, i, j, t, a) {
  key = cfg SUBSEP met
  m = cnt[key]
  if (m == 0) return 0
  for (i = 1; i <= m; i++) a[i] = vals[key, i]
  for (i = 1; i < m; i++)
    for (j = i + 1; j <= m; j++)
      if (a[j] < a[i]) { t = a[i]; a[i] = a[j]; a[j] = t }
  if (m % 2) return a[(m + 1) / 2]
  return (a[m / 2] + a[m / 2 + 1]) / 2
}
END {
  printf "  \"resident_sessions\": {\n"
  printf "    \"sessions_per_sec\": %d,\n", median("resident-sessions", "sessions/sec")
  printf "    \"marginal_bytes_per_session\": %d\n", median("resident-sessions", "bytes/session")
  printf "  },\n"
  printf "  \"requests\": {\n"
  printf "    \"off_req_per_sec\": %d,\n", median("off", "req/sec")
  printf "    \"on_req_per_sec\": %d,\n", median("on", "req/sec")
  printf "    \"stress_req_per_sec\": %d\n", median("stress", "req/sec")
  printf "  },\n"
  off = median("off", "req/sec")
  on = 0; st = 0
  if (off > 0) { on = median("on", "req/sec") / off; st = median("stress", "req/sec") / off }
  printf "  \"sched_on_over_off\": %.3f,\n", on
  printf "  \"stress_over_off\": %.3f,\n", st
}' "$RAW_SCHED"

cat <<'FOOTER'
  "acceptance_threshold": 0.75,
  "what_changed": [
    "M:N machine scheduler (DESIGN.md §16): goroutine-per-request multiplexed over SchedWorkers execution slots, preempting at the simulator safepoints already present (interruptEvery polls, GC-check sites, lowered-block exits) via Machine.OnSafepoint",
    "deficit-round-robin fair queuing over tenants with the quantum settled against actual S-1 cycles, so a hot tenant cannot starve a light one",
    "per-tenant gas buckets denominated in S-1 cycles (refill rate + burst); exhaustion is a typed 429 with Retry-After, distinct from deadline 504s and load-shed 429s",
    "resident sessions: POST /session keeps a core.System live across requests with its 16 MB machine stack parked in a shared pool; drain checkpoints sessions into the snapshot store and boot restores or reports them lost (degraded /readyz)"
  ]
}
FOOTER
} > "$OUT_SCHED"

echo ";; wrote $OUT_SCHED" >&2
