#!/usr/bin/env bash
# End-to-end smoke test for the slcd compile daemon: start it, compile
# and call a function, validate the per-request trace and the
# observability endpoints, induce a deadline timeout, shed under
# saturation, assert a clean drain on SIGTERM, then assert the flight
# recorder dumps on SIGQUIT. Exits non-zero on any failure.
#
# Usage: scripts/slcd-smoke.sh [path-to-slcd]   (default: go run ./cmd/slcd)
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=${1:-}
PID=
ADDR=localhost:7271
DBG=localhost:7272
WORK=$(mktemp -d)
trap '[ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

if [ -z "$BIN" ]; then
  go build -o "$WORK/slcd" ./cmd/slcd
  BIN=$WORK/slcd
fi
go build -o "$WORK/tracecheck" ./cmd/tracecheck

# -max-steps 0 lifts the instruction budget so the spinning requests
# below run into the wall-clock deadline, not the step limit.
"$BIN" -addr $ADDR -debug-addr $DBG -workers 1 -queue-depth 1 \
  -req-timeout 1s -max-steps 0 -cache-dir "$WORK/cache" 2>"$WORK/slcd.log" &
PID=$!

# Wait for readiness.
ready=0
for _ in $(seq 1 100); do
  if curl -fs "http://$DBG/readyz" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "slcd never became ready"; cat "$WORK/slcd.log"; exit 1; }
curl -fs "http://$DBG/healthz" | grep -q ok

# 1. Compile and run a function.
RES=$(curl -fs "http://$ADDR/run" -d '{"source":"(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))","fn":"exptl","args":["2","10","1"]}')
echo "$RES" | grep -q '"value":"1024"' || { echo "exptl gave: $RES"; exit 1; }
echo "ok: compile + run exptl -> 1024"

# 1b. Request tracing: ?trace=1 embeds a Chrome trace in the response
# linked by a W3C trace id; tracecheck -response validates both.
curl -fs "http://$ADDR/run?trace=1" \
  -H 'traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01' \
  -d '{"source":"(defun sq (x) (* x x))","fn":"sq","args":["9"]}' >"$WORK/traced.json"
grep -q '"trace_id":"4bf92f3577b34da6a3ce929d0e0e4736"' "$WORK/traced.json" \
  || { echo "traceparent not adopted:"; cat "$WORK/traced.json"; exit 1; }
"$WORK/tracecheck" -response "$WORK/traced.json" \
  || { echo "embedded trace invalid"; exit 1; }
echo "ok: ?trace=1 + traceparent -> valid per-request trace"

# 1c. Metrics: /metrics must expose real Prometheus histogram series for
# request latency, and the flight recorder must serve filtered events.
curl -fs "http://$DBG/metrics" >"$WORK/metrics.txt"
grep -q '# TYPE slcd_request_seconds histogram' "$WORK/metrics.txt" \
  || { echo "no request-latency histogram:"; cat "$WORK/metrics.txt"; exit 1; }
grep -q 'slcd_request_seconds_bucket{le="+Inf"}' "$WORK/metrics.txt" \
  || { echo "no +Inf bucket:"; cat "$WORK/metrics.txt"; exit 1; }
grep -q '# TYPE slcd_eval_cycles histogram' "$WORK/metrics.txt" \
  || { echo "no eval-cycles histogram:"; cat "$WORK/metrics.txt"; exit 1; }
curl -fs "http://$DBG/debug/events?kind=req-finish" | grep -q '"req-finish"' \
  || { echo "/debug/events has no req-finish events"; exit 1; }
echo "ok: /metrics histograms + /debug/events filtering"

SPIN='{"source":"(defun spin (n) (prog (i) (setq i 0) loop (setq i (+ i 1)) (go loop)))","fn":"spin","args":["1"]}'

# 2. Induced timeout: a spinning call must come back 504 with a deadline
# diagnostic, and the daemon must keep serving.
CODE=$(curl -s -o "$WORK/timeout.json" -w '%{http_code}' "http://$ADDR/run" -d "$SPIN")
[ "$CODE" = 504 ] || { echo "spin request got $CODE, want 504"; cat "$WORK/timeout.json"; exit 1; }
grep -q deadline "$WORK/timeout.json"
echo "ok: induced timeout -> 504 + deadline diagnostic"

# 3. Load shedding: saturate one worker + one queue slot with spinning
# requests; at least one of the burst must be shed with 429.
for i in $(seq 1 6); do
  curl -s -o /dev/null -w '%{http_code}\n' "http://$ADDR/run" -d "$SPIN" >>"$WORK/burst.codes" &
done
wait_jobs() { for j in $(jobs -p); do [ "$j" = "$PID" ] || wait "$j"; done; }
wait_jobs
grep -q 429 "$WORK/burst.codes" || { echo "no request shed in burst:"; cat "$WORK/burst.codes"; exit 1; }
grep -q 504 "$WORK/burst.codes" || { echo "no admitted request reached its deadline:"; cat "$WORK/burst.codes"; exit 1; }
echo "ok: saturation burst shed with 429 ($(grep -c 429 "$WORK/burst.codes") of 6)"

# 4. Clean drain: park a spinning request in flight, send SIGTERM, and
# require the daemon to finish it (by deadline) and exit 0.
curl -s -o /dev/null "http://$ADDR/run" -d "$SPIN" &
sleep 0.3
kill -TERM "$PID"
if ! wait "$PID"; then
  echo "slcd exited non-zero on SIGTERM"; cat "$WORK/slcd.log"; exit 1
fi
wait_jobs
grep -q "drained cleanly" "$WORK/slcd.log" || { echo "no clean-drain log line:"; cat "$WORK/slcd.log"; exit 1; }
echo "ok: SIGTERM drained in-flight work and exited cleanly"

# 5. Flight-recorder dump: a fresh daemon must dump its event ring as
# JSON on SIGQUIT (after serving one request so the ring is non-empty).
PID=
"$BIN" -addr $ADDR -debug-addr $DBG -workers 1 2>"$WORK/slcd-quit.log" &
PID=$!
ready=0
for _ in $(seq 1 100); do
  if curl -fs "http://$DBG/readyz" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.1
done
[ "$ready" = 1 ] || { echo "slcd (SIGQUIT round) never became ready"; cat "$WORK/slcd-quit.log"; exit 1; }
curl -fs "http://$ADDR/compile" -d '{"source":"(defun a (x) x)"}' >/dev/null
kill -QUIT "$PID"
rc=0; wait "$PID" || rc=$?
PID=
[ "$rc" = 2 ] || { echo "SIGQUIT exit code $rc, want 2"; cat "$WORK/slcd-quit.log"; exit 1; }
grep -q ";; flight recorder dump" "$WORK/slcd-quit.log" \
  || { echo "no flight dump marker:"; cat "$WORK/slcd-quit.log"; exit 1; }
grep -q '"req-finish"' "$WORK/slcd-quit.log" \
  || { echo "dump has no request events:"; cat "$WORK/slcd-quit.log"; exit 1; }
echo "ok: SIGQUIT dumped the flight recorder and exited 2"

# 6. Snapshot warm boot + kill -9 torture: boot with a prelude and a
# snapshot directory (a checkpoint is written), then repeatedly SIGKILL
# the daemon while it re-checkpoints. Every restart must come back
# ready and serving the prelude — warm from the snapshot or, if the
# kill tore the write, from a clean quarantine + cold compile. Never a
# crash, never a corrupt image served.
cat >"$WORK/prelude.lisp" <<'EOF'
(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
EOF
SNAPDIR=$WORK/snapshots
start_snapd() {
  "$BIN" -addr $ADDR -debug-addr $DBG -workers 1 \
    -prelude "$WORK/prelude.lisp" -snapshot-dir "$SNAPDIR" 2>>"$WORK/slcd-snap.log" &
  PID=$!
  ready=0
  for _ in $(seq 1 100); do
    if curl -fs "http://$DBG/readyz" >/dev/null 2>&1; then ready=1; break; fi
    sleep 0.1
  done
  [ "$ready" = 1 ] || { echo "snapshot daemon never became ready"; cat "$WORK/slcd-snap.log"; exit 1; }
}
start_snapd
[ -f "$SNAPDIR/boot.snap" ] || { echo "no checkpoint after first boot"; exit 1; }
RES=$(curl -fs "http://$ADDR/run" -d '{"fn":"fib","args":["10"]}')
echo "$RES" | grep -q '"value":"55"' || { echo "prelude call gave: $RES"; exit 1; }
echo "ok: warm-boot daemon up, checkpoint on disk, prelude served"

for round in 1 2 3; do
  # Hammer checkpoints so the SIGKILL can land mid-write.
  (while :; do curl -s -X POST "http://$ADDR/admin/checkpoint" -o /dev/null; done) &
  CKPID=$!
  sleep 0.4
  kill -9 "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true
  kill "$CKPID" 2>/dev/null || true
  wait "$CKPID" 2>/dev/null || true
  PID=

  start_snapd
  curl -fs "http://$DBG/readyz" | grep -q '"ok":true' \
    || { echo "round $round: not ready after kill -9"; cat "$WORK/slcd-snap.log"; exit 1; }
  RES=$(curl -fs "http://$ADDR/run" -d '{"fn":"exptl","args":["2","10","1"]}')
  echo "$RES" | grep -q '"value":"1024"' \
    || { echo "round $round: prelude lost after kill -9: $RES"; exit 1; }
done
# Each post-kill boot either restored the snapshot or cold-compiled and
# re-checkpointed; both paths log, a crash logs neither.
grep -Eq "warm boot from snapshot|snapshot checkpoint written" "$WORK/slcd-snap.log" \
  || { echo "no warm-boot/checkpoint evidence:"; cat "$WORK/slcd-snap.log"; exit 1; }
kill -TERM "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
PID=
echo "ok: kill -9 checkpoint torture -> ready + serving after every crash"

echo "slcd smoke: all checks passed"
