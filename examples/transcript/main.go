// Transcript: the paper's §7 worked example. Compiles testfn with the
// optimizer transcript enabled, reproducing the paper's debugging output
// (META-EVALUATE-ASSOC-COMMUT-CALL, CONSIDER-REVERSING-ARGUMENTS,
// META-SUBSTITUTE, META-CALL-LAMBDA, the sin$f→sinc$f rewrite), then
// prints the Table 4-style assembly listing.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/sexp"
)

const src = `
(defun frotz (a b c) nil)

(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))`

func main() {
	fmt.Println("=== source (the paper's §7 testfn) ===")
	fmt.Println(src)
	fmt.Println("\n=== optimizer transcript ===")
	sys := core.NewSystem(core.Options{OptimizerLog: os.Stdout})
	if err := sys.LoadString(src); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n=== generated code (compare the paper's Table 4) ===")
	lst, err := sys.Listing("testfn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lst)

	fmt.Println("=== the three entry cases ===")
	show := func(args ...sexp.Value) {
		v, err := sys.Call("testfn", args...)
		if err != nil {
			log.Fatal(err)
		}
		in := make([]string, len(args))
		for i, a := range args {
			in[i] = sexp.Print(a)
		}
		fmt.Printf("(testfn %v) = %s\n", in, sexp.Print(v))
	}
	show(sexp.Flonum(0.5))
	show(sexp.Flonum(0.5), sexp.Flonum(2.0))
	show(sexp.Flonum(0.5), sexp.Flonum(2.0), sexp.Flonum(4.0))

	sys.ResetStats()
	if _, err := sys.Call("testfn", sexp.Flonum(0.5)); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("\nheap flonums per call: %d (d, e and max$f live on the stack as pdl numbers;\n",
		st.FlonumAllocs)
	fmt.Println("only the returned q and the boxed argument are heap objects)")
}
