// Numeric: the §6 story. Compiles the matrix assignment
// Z[I,K] := A[I,J]*B[J,K] + C[I,K] + e over static arrays and ablates the
// three numeric-code techniques — TNBIND, representation analysis, pdl
// numbers — printing cycles, MOV counts and heap traffic for each
// configuration.
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/sexp"
)

const kernelSrc = `
(defun kernel ()
  (let ((n 16))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))

;; A float polynomial with pointer-world contact: d and e are used both
;; by a user call (pointer world) and by raw arithmetic.
(defun observe (a b) nil)
(defun poly (x)
  (let ((d (+$f x 1.0)) (e (*$f x x)))
    (observe d e)
    (max$f d e)))`

func consts() map[string]sexp.Value {
	mk := func() *sexp.FloatArray {
		fa := sexp.NewFloatArray([]int{16, 16})
		for i := range fa.Data {
			fa.Data[i] = float64(i%7) * 0.25
		}
		return fa
	}
	return map[string]sexp.Value{
		"aarr": mk(), "barr": mk(), "carr": mk(),
		"zarr":   sexp.NewFloatArray([]int{16, 16}),
		"econst": sexp.Flonum(1.5),
	}
}

type config struct {
	name string
	opts codegen.Options
}

func main() {
	full := codegen.DefaultOptions()
	noTN := full
	noTN.UseTN = false
	noRep := full
	noRep.RepAnalysis = false
	noPdl := full
	noPdl.PdlNumbers = false
	bare := codegen.Options{Optimize: true} // all machine phases off

	configs := []config{
		{"all phases", full},
		{"no TNBIND", noTN},
		{"no rep analysis", noRep},
		{"no pdl numbers", noPdl},
		{"none (pointers everywhere)", bare},
	}

	fmt.Println("=== matrix kernel: Z[I,K] := A[I,J]*B[J,K] + C[I,K] + e (16x16x16) ===")
	fmt.Printf("%-28s %12s %10s %8s %10s\n",
		"configuration", "cycles", "instrs", "MOVs", "flonum allocs")
	for _, c := range configs {
		o := c.opts
		sys := core.NewSystem(core.Options{Codegen: &o, Constants: consts()})
		if err := sys.LoadString(kernelSrc); err != nil {
			log.Fatal(c.name, ": ", err)
		}
		movs, _ := sys.StaticMOVs("kernel")
		sys.ResetStats()
		if _, err := sys.Call("kernel"); err != nil {
			log.Fatal(c.name, ": ", err)
		}
		st := sys.Stats()
		fmt.Printf("%-28s %12d %10d %8d %10d\n",
			c.name, st.Cycles, st.Instrs, movs, st.FlonumAllocs)
	}

	fmt.Println("\n=== poly: floats crossing into the pointer world ===")
	fmt.Printf("%-28s %12s %14s %12s\n",
		"configuration", "cycles", "flonum allocs", "certifies")
	for _, c := range configs {
		o := c.opts
		sys := core.NewSystem(core.Options{Codegen: &o, Constants: consts()})
		if err := sys.LoadString(kernelSrc); err != nil {
			log.Fatal(err)
		}
		sys.ResetStats()
		for i := 0; i < 1000; i++ {
			if _, err := sys.Call("poly", sexp.Flonum(float64(i))); err != nil {
				log.Fatal(err)
			}
		}
		st := sys.Stats()
		fmt.Printf("%-28s %12d %14d %12d\n",
			c.name, st.Cycles, st.FlonumAllocs, st.Certifies)
	}
	fmt.Println("\npdl numbers move the d/e boxings from the heap to the stack;")
	fmt.Println("representation analysis removes raw<->pointer conversions;")
	fmt.Println("TNBIND removes the MOV traffic the paper's §6.1 discusses.")
}
