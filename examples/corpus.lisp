;;; corpus.lisp — a small mixed workload for the observability smoke
;;; tests: enough defuns to occupy several compile workers, patterns the
;;; optimizer rewrites (so -rule-stats has something to report), a
;;; special variable, a macro, and top-level forms that run on the
;;; simulator (so -profile has cycles to attribute).

(defvar *scale* 10)

(defmacro square (x) `(* ,x ,x))

(defun poly (x)
  ;; Horner evaluation; constant folding and assoc/commut
  ;; canonicalization both fire in here.
  (+ (* (+ (* (+ (* x 3) 2) x) 1) x) (* 2 3)))

(defun fib (n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))

(defun fact (n)
  (if (< n 2) 1 (* n (fact (- n 1)))))

(defun sum-to (n)
  (do ((i 0 (+ i 1))
       (acc 0 (+ acc i)))
      ((> i n) acc)))

(defun scaled (x)
  ;; Reads the special through the deep-binding machinery.
  (* x *scale*))

(defun dispatch (k)
  (case k
    (0 'zero)
    (1 'one)
    (2 'two)
    (otherwise 'many)))

(defun redundant (a b)
  ;; The let is beta-convertible and the if has a constant predicate:
  ;; both optimizer staples.
  (let ((t1 (+ a b)))
    (if nil 0 (+ t1 (square t1)))))

(defun build-list (n)
  (let ((acc nil))
    (dotimes (i n)
      (push i acc))
    acc))

(defun count-down (n)
  (prog ((k n) (steps 0))
   loop
    (when (< k 1) (return steps))
    (setq k (- k 1))
    (incf steps)
    (go loop)))

;; Top-level forms: exercised by -run-free smoke invocations.
(poly 7)
(fib 12)
(fact 10)
(sum-to 100)
(scaled 4)
(dispatch 2)
(redundant 3 4)
(count-down 25)
