// Quickstart: compile the paper's §2 exptl function — tail recursion as
// iteration — run it on the S-1 simulator, and show that the stack stays
// flat no matter how large n grows.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sexp"
)

const src = `
;; Compute a*x^n by repeated squaring (the paper's §2 example). The
;; recursive calls are all tail calls, so this "cannot produce stack
;; overflow no matter how large n is".
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))`

func main() {
	sys := core.NewSystem(core.Options{})
	if err := sys.LoadString(src); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== compiled code ===")
	lst, err := sys.Listing("exptl")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(lst)

	fmt.Println("=== running (exptl 2 n 1) on the simulator ===")
	fmt.Printf("%-8s %-24s %-12s %s\n", "n", "result", "tail calls", "max stack")
	for _, n := range []int64{10, 100, 1000, 10000} {
		sys.ResetStats()
		v, err := sys.Call("exptl", sexp.Fixnum(2), sexp.Fixnum(n), sexp.Fixnum(1))
		if err != nil {
			log.Fatal(err)
		}
		out := sexp.Print(v)
		if len(out) > 20 {
			out = out[:17] + "..."
		}
		st := sys.Stats()
		fmt.Printf("%-8d %-24s %-12d %d\n", n, out, st.TailCalls, st.MaxStack)
	}
	fmt.Println("\nThe stack depth is constant: every recursive call compiled")
	fmt.Println("to a frame-reusing jump, the paper's parameter-passing goto.")

	// And the same function through the reference interpreter.
	v, err := sys.Interpret("exptl", sexp.Fixnum(3), sexp.Fixnum(7), sexp.Fixnum(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterpreted (exptl 3 7 1) = %s (same answer, no compiler)\n",
		sexp.Print(v))
}
