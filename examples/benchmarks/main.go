// Benchmarks: a Gabriel-style micro-benchmark suite (TAK, FIB, LIST
// operations, iterative arithmetic) run three ways — compiled on the
// simulator, compiled with every optimization off, and interpreted —
// printing a cycles/host-time table. (Richard P. Gabriel, one of the
// paper's authors, later standardized exactly this style of Lisp
// benchmarking.)
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/sexp"
)

const suite = `
(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))

(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))

(defun listn (n) (if (zerop n) nil (cons n (listn (- n 1)))))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun listbench (n) (len (append (listn n) (listn n))))

(defun iter (n acc) (if (zerop n) acc (iter (- n 1) (+ acc n))))

(defun deriv (e)
  (cond ((atom e) (if (eq e 'x) 1 0))
        ((eq (car e) '+)
         (list '+ (deriv (cadr e)) (deriv (caddr e))))
        ((eq (car e) '*)
         (list '+ (list '* (cadr e) (deriv (caddr e)))
                  (list '* (caddr e) (deriv (cadr e)))))
        (t 'unknown)))
(defun derivbench (n)
  (let ((e '(+ (* 3 (* x x)) (* 5 x))) (out nil) (i 0))
    (prog ()
     loop
      (if (>= i n) (return out) nil)
      (setq out (deriv e))
      (setq i (+ i 1))
      (go loop))))`

type bench struct {
	name string
	fn   string
	args []sexp.Value
}

func main() {
	benches := []bench{
		{"tak(14,10,3)", "tak", []sexp.Value{sexp.Fixnum(14), sexp.Fixnum(10), sexp.Fixnum(3)}},
		{"fib(16)", "fib", []sexp.Value{sexp.Fixnum(16)}},
		{"listbench(200)", "listbench", []sexp.Value{sexp.Fixnum(200)}},
		{"iter(20000)", "iter", []sexp.Value{sexp.Fixnum(20000), sexp.Fixnum(0)}},
		{"derivbench(100)", "derivbench", []sexp.Value{sexp.Fixnum(100)}},
	}

	optimized := core.NewSystem(core.Options{})
	if err := optimized.LoadString(suite); err != nil {
		log.Fatal(err)
	}
	bare := codegen.Options{} // every phase off, straight naive compilation
	unoptimized := core.NewSystem(core.Options{Codegen: &bare})
	if err := unoptimized.LoadString(suite); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %-14s %14s %14s %12s\n",
		"benchmark", "result", "cycles(opt)", "cycles(unopt)", "interp(host)")
	for _, bn := range benches {
		optimized.ResetStats()
		v, err := optimized.Call(bn.fn, bn.args...)
		if err != nil {
			log.Fatal(bn.name, ": ", err)
		}
		optCycles := optimized.Stats().Cycles

		unoptimized.ResetStats()
		v2, err := unoptimized.Call(bn.fn, bn.args...)
		if err != nil {
			log.Fatal(bn.name, " (unopt): ", err)
		}
		if sexp.Print(v) != sexp.Print(v2) {
			log.Fatalf("%s: optimized %s vs unoptimized %s", bn.name,
				sexp.Print(v), sexp.Print(v2))
		}
		unoptCycles := unoptimized.Stats().Cycles

		start := time.Now()
		v3, err := optimized.Interpret(bn.fn, bn.args...)
		if err != nil {
			log.Fatal(bn.name, " (interp): ", err)
		}
		idur := time.Since(start)
		if sexp.Print(v) != sexp.Print(v3) {
			log.Fatalf("%s: compiled %s vs interpreted %s", bn.name,
				sexp.Print(v), sexp.Print(v3))
		}

		out := sexp.Print(v)
		if len(out) > 12 {
			out = out[:9] + "..."
		}
		fmt.Printf("%-16s %-14s %14d %14d %12s\n",
			bn.name, out, optCycles, unoptCycles, idur.Round(time.Microsecond))
	}
	fmt.Println("\nAll three engines agree on every result; the optimized compiler")
	fmt.Println("beats the phase-ablated one on cycles across the suite.")
}
