// Matrix-subscript: the paper's §6.1 kernel — Z[I,K] := A[I,J]*B[J,K] +
// C[I,K] + e swept over a whole matrix — whose inner statement compiles
// to the Table 4 open-coded subscript code: subscript arithmetic
// accumulated in the RT registers, array elements reached through
// indexed operands, no MOV instructions in the statement body. The
// program prints the inner-statement listing, runs the kernel on the
// simulator, verifies one element against a host-side computation, and
// reports the superinstruction groups the decoded engine formed.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sexp"
)

const kernel = `
(defun matrix-subscript ()
  (let ((n 8))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))`

const n = 8

func arrays() map[string]sexp.Value {
	mk := func() *sexp.FloatArray {
		fa := sexp.NewFloatArray([]int{n, n})
		for i := range fa.Data {
			fa.Data[i] = float64(i%7) * 0.25
		}
		return fa
	}
	return map[string]sexp.Value{
		"aarr": mk(), "barr": mk(), "carr": mk(),
		"zarr":   sexp.NewFloatArray([]int{n, n}),
		"econst": sexp.Flonum(1.5),
	}
}

func main() {
	consts := arrays()
	sys := core.NewSystem(core.Options{Constants: consts})
	if err := sys.LoadString(kernel); err != nil {
		log.Fatal(err)
	}

	// The Table-4 shape: show the inner statement, first subscript MULT
	// through the element store.
	lst, err := sys.Listing("matrix-subscript")
	if err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(lst, "\n")
	first, last := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "MULT RT") && first < 0 {
			first = i
		}
		if strings.Contains(l, "store element") && last < 0 {
			last = i
		}
	}
	fmt.Println("=== inner statement (Table 4 shape) ===")
	if first >= 0 && last >= first {
		fmt.Println(strings.Join(lines[first:last+1], "\n"))
	}

	if _, err := sys.Call("matrix-subscript"); err != nil {
		log.Fatal(err)
	}

	// Verify Z[1,2] against the host: the loop overwrites Z[i,k] once
	// per j, so the surviving value uses j = n-1.
	z, err := sys.ReadConstArray(consts["zarr"].(*sexp.FloatArray))
	if err != nil {
		log.Fatal(err)
	}
	a := consts["aarr"].(*sexp.FloatArray)
	i, k, j := 1, 2, n-1
	want := a.Data[i*n+j]*a.Data[j*n+k] + a.Data[i*n+k] + 1.5
	fmt.Printf("\n=== result ===\nZ[1,2] = %g (host computes %g)\n", z.Data[i*n+k], want)
	if z.Data[i*n+k] != want {
		log.Fatal("simulator and host disagree")
	}

	// The decoded engine's superinstruction groups for this image.
	groups := sys.Machine.FuseGroups()
	sigs := make([]string, 0, len(groups))
	for sig := range groups {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(x, y int) bool {
		if groups[sigs[x]] != groups[sigs[y]] {
			return groups[sigs[x]] > groups[sigs[y]]
		}
		return sigs[x] < sigs[y]
	})
	fmt.Println("\n=== superinstruction groups (top 10) ===")
	for i, sig := range sigs {
		if i == 10 {
			break
		}
		fmt.Printf("%6d  %s\n", groups[sig], sig)
	}

	st := sys.Stats()
	fmt.Printf("\n%d instructions, %d cycles, %d MOVs\n", st.Instrs, st.Cycles, st.Movs)
}
