// Quadratic: the paper's §4.1 example. Shows the preliminary conversion —
// let becomes a call to a manifest lambda-expression, cond becomes nested
// ifs — via the back-translation debugging aid, then compiles and runs
// the solver.
package main

import (
	"fmt"
	"log"

	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/sexp"
	"repro/internal/tree"
)

const quadratic = `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))`

func main() {
	fmt.Println("=== source ===")
	fmt.Println(quadratic)

	// Preliminary conversion and back-translation (§4.1: "the internal
	// tree can always be back-translated into valid source code").
	forms, err := sexp.ReadAll(quadratic)
	if err != nil {
		log.Fatal(err)
	}
	conv := convert.New()
	prog, err := conv.ConvertTopLevel(forms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== back-translated internal tree ===")
	fmt.Println(tree.Show(prog.Defs[0].Lambda))

	// Compile and run.
	sys := core.NewSystem(core.Options{})
	if err := sys.LoadString(quadratic); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== roots on the simulator ===")
	cases := [][3]float64{
		{1, -3, 2}, // two roots: 2, 1
		{1, 2, 1},  // one root: -1
		{1, 0, 1},  // no real roots
		{2, -7, 3}, // 3, 1/2
	}
	for _, c := range cases {
		v, err := sys.Call("quadratic",
			sexp.Flonum(c[0]), sexp.Flonum(c[1]), sexp.Flonum(c[2]))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("quadratic(%g, %g, %g) = %s\n", c[0], c[1], c[2], sexp.Print(v))
	}
}
